//! The checkpoint codec plane: delta frames + lossless f64 compression,
//! sitting between *capture* and *ship* in the resilient store.
//!
//! Every snapshot entry the store would ship raw can instead be wrapped in a
//! self-describing **frame**:
//!
//! * **Delta frames** — the payload is split into fixed-size chunks and a
//!   per-chunk FNV digest manifest is compared against the digests carried by
//!   the last committed frame for the same key; only dirty chunks are
//!   stored/shipped. The manifest always covers the *full* new state, so the
//!   next epoch can diff against this frame without decoding it. Chains are
//!   bounded: a full base is re-emitted when the dirty ratio exceeds
//!   `GML_CKPT_DIRTY_MAX`, every `GML_CKPT_FULL_EVERY` epochs, and after
//!   every restore.
//! * **Lossless compression** (`GML_CKPT_LEVEL=1`) — each stored chunk is
//!   XOR-ed against its previous 64-bit word (Gorilla/fpzip idiom: iterative
//!   f64 state mutates low mantissa bits, so residuals are mostly zero
//!   bytes), byte-plane transposed, and run-length packed. Chunks that do
//!   not shrink are stored raw, so the wire size never exceeds raw + frame
//!   overhead. Encoding fans out across the kernel pool; buffers come from
//!   the serial arena.
//! * **Lossy quantization** (`GML_CKPT_LOSSY_TOL`, off by default) — f64
//!   payloads ([`PayloadClass::F64Tail`]) are rounded to a uniform grid of
//!   step `2·tol` *before* digesting, bounding the absolute restore error by
//!   `tol`. Opaque payloads (topology, integer indices, mixed metadata)
//!   reject quantization and stay bit-exact.
//!
//! Restore reconstructs bit-identical state in the lossless modes: the frame
//! carries an FNV digest of the whole logical payload (post-quantization)
//! and every decode re-derives and verifies it, so a corrupt or mismatched
//! chain surfaces as [`GmlError::DataLoss`](crate::error::GmlError) instead
//! of silently wrong data.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use apgas::digest::fnv1a_bytes;
use bytes::{BufMut, Bytes};
use apgas::monitor::{env_parsed, env_parsed_float};
use apgas::pool;
use apgas::serial::arena;

use crate::snapshot::Snapshot;

/// Frame magic: `"GLCK"` little-endian. A payload that does not start with
/// this is not a frame (raw entries never collide: the store tracks
/// framed-ness explicitly and never guesses from content).
const FRAME_MAGIC: u32 = 0x4b43_4c47;

/// Frame flag: the frame stores only dirty chunks against `ref_snap_id`.
const FLAG_DELTA: u8 = 1;
/// Frame flag: at least one stored chunk is RLE-compressed.
const FLAG_COMPRESSED: u8 = 2;
/// Frame flag: the payload was lossily quantized before digesting.
const FLAG_LOSSY: u8 = 4;

/// Fixed header bytes before the chunk-digest manifest.
const HEADER_FIXED: usize = 4 + 1 + 1 + 4 + 8 + 8 + 8 + 4;
/// Per-stored-chunk record overhead: index (u32) + encoding (u8) + len (u32).
const CHUNK_RECORD: usize = 4 + 1 + 4;

/// How the codec treats a snapshot payload for the *lossy* mode.
///
/// Returned by [`Snapshottable::payload_class`](crate::snapshot::Snapshottable::payload_class);
/// the default is [`Opaque`](PayloadClass::Opaque), which keeps every object
/// bit-exact unless it explicitly opts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadClass {
    /// Arbitrary bytes (topology, integer indices, mixed metadata).
    /// Quantization is rejected; the payload is always lossless.
    Opaque,
    /// The payload is `offset` header bytes followed by a packed `[f64]`
    /// tail (the layout of the `Serial` impls for `Vector` and
    /// `DenseMatrix`). Only such payloads may be quantized.
    F64Tail {
        /// Byte offset where the packed f64 run begins.
        offset: usize,
    },
}

/// Which frames the store emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecMode {
    /// Bypass the codec plane entirely: entries are stored and shipped as
    /// the raw capture bytes (the pre-codec store behavior, and the
    /// reference leg of the checkpoint-parity drill).
    Raw,
    /// Frame every entry but never emit deltas (full base every epoch).
    /// Compression still applies per `level`.
    Full,
    /// Emit delta frames against the last committed/provisional snapshot
    /// when eligible, full bases otherwise.
    Delta,
}

/// Codec knobs, normally read from the `GML_CKPT_*` environment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodecConfig {
    /// Frame emission mode (`GML_CKPT_CODEC` = `raw` | `full` | `delta`).
    pub mode: CodecMode,
    /// Compression level (`GML_CKPT_LEVEL`): 0 stores chunks raw, 1 applies
    /// XOR-residual byte-plane RLE.
    pub level: u8,
    /// Chunk size in bytes (`GML_CKPT_CHUNK`), the delta granularity.
    pub chunk: usize,
    /// Dirty-chunk ratio above which a delta degenerates to a full base
    /// (`GML_CKPT_DIRTY_MAX`).
    pub dirty_max: f64,
    /// Emit a full base at least every this many epochs per entry
    /// (`GML_CKPT_FULL_EVERY`); equivalently the maximum chain length.
    pub full_every: u32,
    /// Absolute-error bound for lossy quantization (`GML_CKPT_LOSSY_TOL`);
    /// `None` keeps every payload lossless.
    pub lossy_tol: Option<f64>,
}

impl CodecConfig {
    /// The codec disabled: raw passthrough (what bare
    /// [`ResilientStore::make`](crate::store::ResilientStore::make) uses).
    pub fn raw() -> Self {
        CodecConfig {
            mode: CodecMode::Raw,
            level: 0,
            chunk: 4096,
            dirty_max: 0.5,
            full_every: 16,
            lossy_tol: None,
        }
    }

    /// Read the `GML_CKPT_*` knobs; defaults to delta frames with
    /// compression on and lossy off. This is what
    /// [`AppResilientStore::make`](crate::app_store::AppResilientStore::make)
    /// uses, so the whole executor stack runs through the codec by default.
    pub fn from_env() -> Self {
        let mode = match env_parsed::<String>("GML_CKPT_CODEC", "delta".into()).as_str() {
            "raw" => CodecMode::Raw,
            "full" => CodecMode::Full,
            _ => CodecMode::Delta,
        };
        let level = env_parsed::<u64>("GML_CKPT_LEVEL", 1).min(1) as u8;
        let chunk = (env_parsed::<u64>("GML_CKPT_CHUNK", 4096) as usize).clamp(64, 1 << 24);
        let dirty_max = env_parsed_float("GML_CKPT_DIRTY_MAX", 0.5, 0.0, 1.0);
        let full_every = (env_parsed::<u64>("GML_CKPT_FULL_EVERY", 16) as u32).max(1);
        let tol = env_parsed_float("GML_CKPT_LOSSY_TOL", 0.0, 0.0, f64::MAX);
        CodecConfig {
            mode,
            level,
            chunk,
            dirty_max,
            full_every,
            lossy_tol: (tol > 0.0).then_some(tol),
        }
    }

    /// Whether the codec plane is bypassed.
    pub fn is_raw(&self) -> bool {
        self.mode == CodecMode::Raw
    }

    /// One-line config stamp for bench metadata and skip-with-reason
    /// comparisons: `"delta"`, `"full"`, `"raw"`.
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            CodecMode::Raw => "raw",
            CodecMode::Full => "full",
            CodecMode::Delta => "delta",
        }
    }
}

/// Per-object capture context, set by `AppResilientStore::save` around
/// `make_snapshot` so every place's `save_batch` can see the delta base and
/// the payload class of the object being captured.
#[derive(Clone)]
pub(crate) struct CaptureCtx {
    /// The last committed/provisional snapshot of the object, if delta
    /// encoding against it is allowed (fully redundant, no forced full).
    pub ref_snap: Option<Snapshot>,
    /// The object's payload class (gates lossy quantization).
    pub class: PayloadClass,
}

/// Shared codec state hanging off a `ResilientStore` (one `Arc`, shared by
/// every clone of the store across places — places are threads here).
pub(crate) struct CodecState {
    /// The immutable knob set this store was built with.
    pub config: CodecConfig,
    /// The capture context of the object currently inside `make_snapshot`
    /// (captures are serialized by the app thread, so one slot suffices).
    pub capture: parking_lot::Mutex<Option<CaptureCtx>>,
    /// Set by any place that emitted a delta frame during the current
    /// capture; read + cleared by `AppResilientStore::save` to attach the
    /// chain to the built snapshot.
    pub used_delta: AtomicBool,
    /// Force full bases until the next successful commit (set after every
    /// restore: the surviving replicas may be rebuilding).
    pub force_full: AtomicBool,
}

impl CodecState {
    pub(crate) fn new(config: CodecConfig) -> Self {
        CodecState {
            config,
            capture: parking_lot::Mutex::new(None),
            used_delta: AtomicBool::new(false),
            force_full: AtomicBool::new(false),
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global codec counters (logical vs wire bytes, frame mix, time).
// ---------------------------------------------------------------------------

static LOGICAL_BYTES: AtomicU64 = AtomicU64::new(0);
static WIRE_BYTES: AtomicU64 = AtomicU64::new(0);
static FRAMES_FULL: AtomicU64 = AtomicU64::new(0);
static FRAMES_DELTA: AtomicU64 = AtomicU64::new(0);
static FRAMES_LOSSY: AtomicU64 = AtomicU64::new(0);
static ENCODE_NANOS: AtomicU64 = AtomicU64::new(0);
static DECODE_NANOS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time view of the codec counters. Monotonic; subtract two with
/// [`since`](CodecSnapshot::since) for an interval, exactly like
/// `apgas::stats::StatsSnapshot`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecSnapshot {
    /// Pre-codec (logical) payload bytes encoded.
    pub logical_bytes: u64,
    /// Post-codec (wire) frame bytes produced.
    pub wire_bytes: u64,
    /// Full base frames emitted.
    pub frames_full: u64,
    /// Delta frames emitted.
    pub frames_delta: u64,
    /// Frames whose payload was lossily quantized.
    pub frames_lossy: u64,
    /// Wall nanoseconds spent encoding frames.
    pub encode_nanos: u64,
    /// Wall nanoseconds spent decoding frames (chain replay included).
    pub decode_nanos: u64,
}

impl CodecSnapshot {
    /// Counter-wise difference `self - earlier`.
    pub fn since(&self, earlier: &CodecSnapshot) -> CodecSnapshot {
        CodecSnapshot {
            logical_bytes: self.logical_bytes - earlier.logical_bytes,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
            frames_full: self.frames_full - earlier.frames_full,
            frames_delta: self.frames_delta - earlier.frames_delta,
            frames_lossy: self.frames_lossy - earlier.frames_lossy,
            encode_nanos: self.encode_nanos - earlier.encode_nanos,
            decode_nanos: self.decode_nanos - earlier.decode_nanos,
        }
    }

    /// Wire/logical ratio (1.0 when nothing was encoded yet).
    pub fn compression_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.wire_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// Read the process-global codec counters.
pub fn counters() -> CodecSnapshot {
    CodecSnapshot {
        logical_bytes: LOGICAL_BYTES.load(Ordering::Relaxed),
        wire_bytes: WIRE_BYTES.load(Ordering::Relaxed),
        frames_full: FRAMES_FULL.load(Ordering::Relaxed),
        frames_delta: FRAMES_DELTA.load(Ordering::Relaxed),
        frames_lossy: FRAMES_LOSSY.load(Ordering::Relaxed),
        encode_nanos: ENCODE_NANOS.load(Ordering::Relaxed),
        decode_nanos: DECODE_NANOS.load(Ordering::Relaxed),
    }
}

/// Render the `gml_ckpt_*` Prometheus families (registered alongside the
/// `gml_store_*` gauges by `ResilientStore::register_monitor`).
pub fn render_codec(out: &mut String) {
    let c = counters();
    out.push_str("# TYPE gml_ckpt_logical_bytes_total counter\n");
    out.push_str(&format!("gml_ckpt_logical_bytes_total {}\n", c.logical_bytes));
    out.push_str("# TYPE gml_ckpt_wire_bytes_total counter\n");
    out.push_str(&format!("gml_ckpt_wire_bytes_total {}\n", c.wire_bytes));
    out.push_str("# TYPE gml_ckpt_frames_total counter\n");
    out.push_str(&format!("gml_ckpt_frames_total{{kind=\"full\"}} {}\n", c.frames_full));
    out.push_str(&format!("gml_ckpt_frames_total{{kind=\"delta\"}} {}\n", c.frames_delta));
    out.push_str(&format!("gml_ckpt_frames_total{{kind=\"lossy\"}} {}\n", c.frames_lossy));
    out.push_str("# TYPE gml_ckpt_encode_nanos_total counter\n");
    out.push_str(&format!("gml_ckpt_encode_nanos_total {}\n", c.encode_nanos));
    out.push_str("# TYPE gml_ckpt_decode_nanos_total counter\n");
    out.push_str(&format!("gml_ckpt_decode_nanos_total {}\n", c.decode_nanos));
    out.push_str("# TYPE gml_ckpt_compression_ratio gauge\n");
    out.push_str(&format!("gml_ckpt_compression_ratio {:.6}\n", c.compression_ratio()));
}

// ---------------------------------------------------------------------------
// Frame header
// ---------------------------------------------------------------------------

/// Parsed frame header (everything before the stored-chunk records).
pub(crate) struct FrameHeader {
    pub flags: u8,
    /// 0 for a full base, `base.depth + 1` for a delta.
    pub chain_depth: u8,
    pub chunk_size: u32,
    pub logical_len: u64,
    /// FNV-1a of the full logical payload (post-quantization).
    pub payload_fnv: u64,
    /// Snapshot id of the delta base (0 and unused for full frames).
    pub ref_snap_id: u64,
    /// Per-chunk FNV digests of the full logical payload.
    pub digests: Vec<u64>,
    /// Byte offset of the first stored-chunk record.
    pub records_at: usize,
}

impl FrameHeader {
    pub(crate) fn is_delta(&self) -> bool {
        self.flags & FLAG_DELTA != 0
    }

    #[cfg(test)]
    pub(crate) fn is_lossy(&self) -> bool {
        self.flags & FLAG_LOSSY != 0
    }
}

fn rd_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

fn rd_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

/// Parse a frame header; `Err` describes the corruption.
pub(crate) fn parse_header(frame: &[u8]) -> Result<FrameHeader, String> {
    let magic = rd_u32(frame, 0).ok_or("frame truncated before magic")?;
    if magic != FRAME_MAGIC {
        return Err(format!("bad frame magic {magic:#x}"));
    }
    let flags = *frame.get(4).ok_or("frame truncated at flags")?;
    let chain_depth = *frame.get(5).ok_or("frame truncated at depth")?;
    let chunk_size = rd_u32(frame, 6).ok_or("frame truncated at chunk size")?;
    let logical_len = rd_u64(frame, 10).ok_or("frame truncated at logical len")?;
    let payload_fnv = rd_u64(frame, 18).ok_or("frame truncated at payload fnv")?;
    let ref_snap_id = rd_u64(frame, 26).ok_or("frame truncated at ref id")?;
    let n_chunks = rd_u32(frame, 34).ok_or("frame truncated at chunk count")? as usize;
    if chunk_size == 0 {
        return Err("zero chunk size".into());
    }
    let expect = logical_len.div_ceil(chunk_size as u64) as usize;
    if n_chunks != expect {
        return Err(format!("chunk count {n_chunks} != expected {expect}"));
    }
    let mut digests = Vec::with_capacity(n_chunks);
    let mut at = HEADER_FIXED;
    for _ in 0..n_chunks {
        digests.push(rd_u64(frame, at).ok_or("frame truncated in digest manifest")?);
        at += 8;
    }
    Ok(FrameHeader {
        flags,
        chain_depth,
        chunk_size,
        logical_len,
        payload_fnv,
        ref_snap_id,
        digests,
        records_at: at,
    })
}

// ---------------------------------------------------------------------------
// Chunk compression: XOR-vs-previous-word residuals, byte-plane transpose,
// run-length packing of the (mostly zero) planes.
// ---------------------------------------------------------------------------

/// RLE token space: `0x00..=0x7f` introduces a literal run of `t+1` bytes,
/// `0x80..=0xff` encodes a zero run of `t - 0x7f` (1..=128) bytes.
fn rle_pack(plane: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < plane.len() {
        if plane[i] == 0 {
            let mut z = 1;
            while z < 128 && i + z < plane.len() && plane[i + z] == 0 {
                z += 1;
            }
            out.push(0x80 + (z - 1) as u8);
            i += z;
        } else {
            let start = i;
            let mut l = 0;
            // A literal run ends at a zero worth encoding (two zeros in a
            // row always are; a lone zero between literals costs the same
            // either way, so break on any zero for simplicity).
            while l < 128 && i < plane.len() && plane[i] != 0 {
                l += 1;
                i += 1;
            }
            out.push((l - 1) as u8);
            out.extend_from_slice(&plane[start..start + l]);
        }
    }
}

/// Inverse of [`rle_pack`]: consume tokens from `src[*at..]` until exactly
/// `n` bytes are produced.
fn rle_unpack(src: &[u8], at: &mut usize, n: usize, out: &mut Vec<u8>) -> Result<(), String> {
    let start = out.len();
    while out.len() - start < n {
        let t = *src.get(*at).ok_or("compressed chunk truncated at token")?;
        *at += 1;
        if t >= 0x80 {
            let z = (t - 0x7f) as usize;
            out.resize(out.len() + z, 0);
        } else {
            let l = t as usize + 1;
            let lit = src.get(*at..*at + l).ok_or("compressed chunk truncated in literal")?;
            out.extend_from_slice(lit);
            *at += l;
        }
    }
    if out.len() - start != n {
        return Err("compressed chunk overran plane boundary".into());
    }
    Ok(())
}

/// Compress one chunk. Returns `(encoding, bytes)` where encoding 0 means
/// the chunk is stored raw (compression did not shrink it) and 1 means
/// XOR + transpose + RLE.
fn compress_chunk(chunk: &[u8]) -> (u8, Vec<u8>) {
    let n_words = chunk.len() / 8;
    let tail = &chunk[n_words * 8..];
    // XOR residuals vs the previous word: iterative-state f64 runs leave
    // most residual bytes zero (sign/exponent/high mantissa unchanged).
    let mut residuals = Vec::with_capacity(n_words);
    let mut prev = 0u64;
    for i in 0..n_words {
        let w = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().expect("8-byte word"));
        residuals.push(if i == 0 { w } else { w ^ prev });
        prev = w;
    }
    // Byte-plane transpose + per-plane RLE. Planes are self-terminating on
    // decode (each holds exactly n_words bytes).
    let mut out = Vec::with_capacity(chunk.len() / 2);
    let mut plane = Vec::with_capacity(n_words);
    for b in 0..8 {
        plane.clear();
        for r in &residuals {
            plane.push(r.to_le_bytes()[b]);
        }
        rle_pack(&plane, &mut out);
    }
    out.extend_from_slice(tail);
    if out.len() < chunk.len() {
        (1, out)
    } else {
        (0, chunk.to_vec())
    }
}

/// Decompress one chunk of logical length `n` into `out`.
fn decompress_chunk(enc: u8, data: &[u8], n: usize, out: &mut Vec<u8>) -> Result<(), String> {
    match enc {
        0 => {
            if data.len() != n {
                return Err(format!("raw chunk len {} != logical {n}", data.len()));
            }
            out.extend_from_slice(data);
            Ok(())
        }
        1 => {
            let n_words = n / 8;
            let tail_len = n - n_words * 8;
            let mut planes = Vec::with_capacity(n_words * 8);
            let mut at = 0;
            for _ in 0..8 {
                rle_unpack(data, &mut at, n_words, &mut planes)?;
            }
            let tail = data.get(at..at + tail_len).ok_or("compressed chunk missing tail")?;
            if at + tail_len != data.len() {
                return Err("trailing garbage after compressed chunk".into());
            }
            let start = out.len();
            out.resize(start + n, 0);
            let mut prev = 0u64;
            for i in 0..n_words {
                let mut wb = [0u8; 8];
                for (b, byte) in wb.iter_mut().enumerate() {
                    *byte = planes[b * n_words + i];
                }
                let r = u64::from_le_bytes(wb);
                let w = if i == 0 { r } else { r ^ prev };
                out[start + i * 8..start + i * 8 + 8].copy_from_slice(&w.to_le_bytes());
                prev = w;
            }
            out[start + n_words * 8..start + n].copy_from_slice(tail);
            Ok(())
        }
        e => Err(format!("unknown chunk encoding {e}")),
    }
}

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

/// The result of encoding one entry.
pub(crate) struct EncodeOutcome {
    /// The framed wire bytes.
    pub frame: Bytes,
    /// Whether a delta frame was emitted (the caller must then record the
    /// chain on the snapshot).
    pub delta: bool,
}

/// Encode one logical payload into a frame. `ref_frame` is the candidate
/// delta base (same key, same owner/backup, locally present); `lossy` marks
/// that `payload` was already quantized. Placement eligibility is the
/// caller's job; this function additionally requires matching geometry and a
/// bounded chain before emitting a delta.
pub(crate) fn encode_entry(
    cfg: &CodecConfig,
    payload: &[u8],
    ref_frame: Option<&[u8]>,
    ref_snap_id: u64,
    lossy: bool,
) -> EncodeOutcome {
    let t0 = Instant::now();
    let chunk = cfg.chunk;
    let n_chunks = payload.len().div_ceil(chunk);
    let digests: Vec<u64> =
        payload.chunks(chunk.max(1)).map(fnv1a_bytes).collect::<Vec<_>>();
    debug_assert_eq!(digests.len(), n_chunks);

    // Delta eligibility: a parseable base with identical geometry, a bounded
    // chain, and a dirty ratio within the knob.
    let mut delta_base: Option<FrameHeader> = None;
    if cfg.mode == CodecMode::Delta && n_chunks > 0 {
        if let Some(rf) = ref_frame {
            if let Ok(h) = parse_header(rf) {
                let depth_ok = (h.chain_depth as u32 + 1) < cfg.full_every;
                let geo_ok = h.logical_len == payload.len() as u64
                    && h.chunk_size as usize == chunk
                    && h.digests.len() == n_chunks;
                if depth_ok && geo_ok {
                    delta_base = Some(h);
                }
            }
        }
    }
    let (stored, is_delta, depth) = match &delta_base {
        Some(h) => {
            let dirty: Vec<usize> =
                (0..n_chunks).filter(|&i| digests[i] != h.digests[i]).collect();
            if dirty.len() as f64 > cfg.dirty_max * n_chunks as f64 {
                ((0..n_chunks).collect(), false, 0u8)
            } else {
                (dirty, true, h.chain_depth + 1)
            }
        }
        None => ((0..n_chunks).collect::<Vec<usize>>(), false, 0u8),
    };

    // Compress the stored chunks across the kernel pool; deterministic
    // in-order assembly from per-chunk slots.
    let slots: Vec<Mutex<(u8, Vec<u8>)>> =
        (0..stored.len()).map(|_| Mutex::new((0, Vec::new()))).collect();
    if cfg.level >= 1 {
        pool::run(stored.len(), &|i| {
            let ci = stored[i];
            let lo = ci * chunk;
            let hi = (lo + chunk).min(payload.len());
            *slots[i].lock().expect("codec slot") = compress_chunk(&payload[lo..hi]);
        });
    } else {
        for (i, &ci) in stored.iter().enumerate() {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(payload.len());
            *slots[i].lock().expect("codec slot") = (0, payload[lo..hi].to_vec());
        }
    }

    let mut flags = 0u8;
    if is_delta {
        flags |= FLAG_DELTA;
    }
    if lossy {
        flags |= FLAG_LOSSY;
    }
    let any_compressed =
        slots.iter().any(|s| s.lock().expect("codec slot").0 != 0);
    if any_compressed {
        flags |= FLAG_COMPRESSED;
    }
    let stored_bytes: usize =
        slots.iter().map(|s| s.lock().expect("codec slot").1.len()).sum();
    let size = HEADER_FIXED + 8 * n_chunks + stored.len() * CHUNK_RECORD + stored_bytes;
    let frame = arena::encode_with(size, |buf| {
        buf.put_u32_le(FRAME_MAGIC);
        buf.put_u8(flags);
        buf.put_u8(depth);
        buf.put_u32_le(chunk as u32);
        buf.put_u64_le(payload.len() as u64);
        buf.put_u64_le(fnv1a_bytes(payload));
        buf.put_u64_le(if is_delta { ref_snap_id } else { 0 });
        buf.put_u32_le(n_chunks as u32);
        for d in &digests {
            buf.put_u64_le(*d);
        }
        buf.put_u32_le(stored.len() as u32);
        for (i, &ci) in stored.iter().enumerate() {
            let slot = slots[i].lock().expect("codec slot");
            buf.put_u32_le(ci as u32);
            buf.put_u8(slot.0);
            buf.put_u32_le(slot.1.len() as u32);
            buf.extend_from_slice(&slot.1);
        }
    });

    LOGICAL_BYTES.fetch_add(payload.len() as u64, Ordering::Relaxed);
    WIRE_BYTES.fetch_add(frame.len() as u64, Ordering::Relaxed);
    if is_delta {
        FRAMES_DELTA.fetch_add(1, Ordering::Relaxed);
    } else {
        FRAMES_FULL.fetch_add(1, Ordering::Relaxed);
    }
    if lossy {
        FRAMES_LOSSY.fetch_add(1, Ordering::Relaxed);
    }
    ENCODE_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    EncodeOutcome { frame, delta: is_delta }
}

/// Decode one frame back into its full logical payload. `base` is the
/// *decoded* logical payload of the delta base (required iff the frame is a
/// delta). The reconstructed payload is verified against the frame's FNV
/// digest — a mismatch is corruption, never returned as data.
pub(crate) fn decode_frame(frame: &[u8], base: Option<&[u8]>) -> Result<Bytes, String> {
    let t0 = Instant::now();
    let h = parse_header(frame)?;
    let n = h.logical_len as usize;
    let chunk = h.chunk_size as usize;
    let n_chunks = h.digests.len();
    let n_stored =
        rd_u32(frame, h.records_at).ok_or("frame truncated at stored count")? as usize;
    if n_stored > n_chunks {
        return Err(format!("stored chunk count {n_stored} > chunk count {n_chunks}"));
    }

    let base = if h.is_delta() {
        let b = base.ok_or("delta frame decoded without its base")?;
        if b.len() != n {
            return Err(format!("delta base len {} != logical len {n}", b.len()));
        }
        Some(b)
    } else {
        None
    };

    // Start from the base (delta) or zeroes (full — every chunk is stored),
    // then overwrite the stored chunks.
    let mut out: Vec<u8> = match base {
        Some(b) => b.to_vec(),
        None => Vec::with_capacity(n),
    };
    if base.is_none() {
        out.resize(n, 0);
    }
    let mut covered = vec![base.is_some(); n_chunks];
    let mut at = h.records_at + 4;
    let mut scratch = Vec::new();
    for _ in 0..n_stored {
        let ci = rd_u32(frame, at).ok_or("frame truncated at chunk index")? as usize;
        let enc = *frame.get(at + 4).ok_or("frame truncated at chunk encoding")?;
        let len = rd_u32(frame, at + 5).ok_or("frame truncated at chunk len")? as usize;
        at += CHUNK_RECORD;
        let data = frame.get(at..at + len).ok_or("frame truncated in chunk data")?;
        at += len;
        if ci >= n_chunks {
            return Err(format!("chunk index {ci} out of range"));
        }
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        scratch.clear();
        decompress_chunk(enc, data, hi - lo, &mut scratch)?;
        out[lo..hi].copy_from_slice(&scratch);
        covered[ci] = true;
    }
    if at != frame.len() {
        return Err("trailing garbage after frame".into());
    }
    if let Some(miss) = covered.iter().position(|c| !c) {
        return Err(format!("full frame missing chunk {miss}"));
    }
    if fnv1a_bytes(&out) != h.payload_fnv {
        return Err("decoded payload digest mismatch".into());
    }
    let out = Bytes::from(out);
    DECODE_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Ok(out)
}

/// Quantize an f64-tail payload to a uniform grid of step `2·tol` (absolute
/// restore error ≤ `tol`). Returns `None` — leave the payload lossless —
/// when the class is opaque, the tail is misaligned, or `tol` is not
/// positive. Non-finite values pass through unchanged.
pub(crate) fn quantize_payload(payload: &Bytes, class: PayloadClass, tol: f64) -> Option<Bytes> {
    let PayloadClass::F64Tail { offset } = class else {
        return None;
    };
    // `tol <= 0.0` also rejects NaN tolerances (NaN fails every comparison).
    if tol <= 0.0 || tol.is_nan() || payload.len() < offset {
        return None;
    }
    if !(payload.len() - offset).is_multiple_of(8) {
        return None;
    }
    let step = 2.0 * tol;
    let out = arena::encode_with(payload.len(), |buf| {
        buf.extend_from_slice(&payload[..offset]);
        for w in payload[offset..].chunks_exact(8) {
            let v = f64::from_le_bytes(w.try_into().expect("8-byte f64"));
            let q = if v.is_finite() { (v / step).round() * step } else { v };
            buf.put_f64_le(q);
        }
    });
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_full(cfg: &CodecConfig, payload: &[u8]) -> Bytes {
        let out = encode_entry(cfg, payload, None, 0, false);
        assert!(!out.delta);
        decode_frame(&out.frame, None).expect("full frame decodes")
    }

    fn cfg_delta() -> CodecConfig {
        CodecConfig { mode: CodecMode::Delta, level: 1, ..CodecConfig::raw() }
    }

    fn f64_payload(values: &[f64]) -> Vec<u8> {
        let mut v = (values.len() as u64).to_le_bytes().to_vec();
        for x in values {
            v.extend_from_slice(&x.to_le_bytes());
        }
        v
    }

    #[test]
    fn full_frame_roundtrips_bit_identically() {
        let cfg = cfg_delta();
        for payload in [
            vec![],
            vec![1u8],
            vec![0u8; 5000],
            (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect::<Vec<u8>>(),
            f64_payload(&[f64::NAN, -0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY, 5e-324]),
        ] {
            assert_eq!(&roundtrip_full(&cfg, &payload)[..], &payload[..]);
        }
    }

    #[test]
    fn smooth_f64_run_compresses() {
        let cfg = cfg_delta();
        let values: Vec<f64> = (0..4096).map(|i| 1.0 + i as f64 * 1e-9).collect();
        let payload = f64_payload(&values);
        let out = encode_entry(&cfg, &payload, None, 0, false);
        assert!(
            out.frame.len() < payload.len() / 2,
            "smooth run should compress >2x: {} vs {}",
            out.frame.len(),
            payload.len()
        );
        assert_eq!(&decode_frame(&out.frame, None).unwrap()[..], &payload[..]);
    }

    #[test]
    fn delta_ships_only_dirty_chunks_and_replays() {
        let cfg = CodecConfig { chunk: 256, ..cfg_delta() };
        let base: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let base_out = encode_entry(&cfg, &base, None, 0, false);
        let mut next = base.clone();
        next[700] ^= 0xff; // dirties exactly one 256-byte chunk
        let delta_out = encode_entry(&cfg, &next, Some(&base_out.frame), 41, false);
        assert!(delta_out.delta);
        assert!(
            delta_out.frame.len() < base_out.frame.len() / 4,
            "one dirty chunk of sixteen must ship small: {} vs {}",
            delta_out.frame.len(),
            base_out.frame.len()
        );
        let hdr = parse_header(&delta_out.frame).unwrap();
        assert_eq!(hdr.ref_snap_id, 41);
        assert_eq!(hdr.chain_depth, 1);
        let base_logical = decode_frame(&base_out.frame, None).unwrap();
        let got = decode_frame(&delta_out.frame, Some(&base_logical)).unwrap();
        assert_eq!(&got[..], &next[..]);
    }

    #[test]
    fn clean_payload_produces_empty_delta() {
        let cfg = CodecConfig { chunk: 512, ..cfg_delta() };
        let data = vec![7u8; 8192];
        let base = encode_entry(&cfg, &data, None, 0, false);
        let delta = encode_entry(&cfg, &data, Some(&base.frame), 1, false);
        assert!(delta.delta);
        assert!(delta.frame.len() < 300, "no dirty chunks: manifest only");
        let got =
            decode_frame(&delta.frame, Some(&decode_frame(&base.frame, None).unwrap())).unwrap();
        assert_eq!(&got[..], &data[..]);
    }

    #[test]
    fn dirty_ratio_knob_forces_full_base() {
        let cfg = CodecConfig { chunk: 256, dirty_max: 0.25, ..cfg_delta() };
        let base: Vec<u8> = vec![1u8; 4096];
        let base_out = encode_entry(&cfg, &base, None, 0, false);
        // Dirty 8 of 16 chunks: over the 25% knob, must fall back to full.
        let mut next = base.clone();
        for c in 0..8 {
            next[c * 512] ^= 1;
        }
        let out = encode_entry(&cfg, &next, Some(&base_out.frame), 1, false);
        assert!(!out.delta, "over-dirty delta degrades to a full base");
        assert_eq!(&decode_frame(&out.frame, None).unwrap()[..], &next[..]);
    }

    #[test]
    fn chain_depth_is_bounded_by_full_every() {
        let cfg = CodecConfig { chunk: 256, full_every: 3, ..cfg_delta() };
        let data = vec![3u8; 1024];
        let f0 = encode_entry(&cfg, &data, None, 0, false);
        let f1 = encode_entry(&cfg, &data, Some(&f0.frame), 1, false);
        assert!(f1.delta, "depth 1 < full_every 3");
        let f2 = encode_entry(&cfg, &data, Some(&f1.frame), 2, false);
        assert!(f2.delta, "depth 2 < full_every 3");
        let f3 = encode_entry(&cfg, &data, Some(&f2.frame), 3, false);
        assert!(!f3.delta, "depth 3 would reach full_every: full base re-emitted");
    }

    #[test]
    fn geometry_mismatch_refuses_delta() {
        let cfg = CodecConfig { chunk: 256, ..cfg_delta() };
        let base = encode_entry(&cfg, &vec![1u8; 1024], None, 0, false);
        let grown = encode_entry(&cfg, &vec![1u8; 2048], Some(&base.frame), 1, false);
        assert!(!grown.delta, "resized payload must emit a full base");
    }

    #[test]
    fn decode_detects_corruption() {
        let cfg = cfg_delta();
        let payload: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        let out = encode_entry(&cfg, &payload, None, 0, false);
        let mut bad = out.frame.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decode_frame(&bad, None).is_err(), "bit flip must not decode silently");
        let truncated = &out.frame[..out.frame.len() - 3];
        assert!(decode_frame(truncated, None).is_err());
        assert!(decode_frame(b"not a frame", None).is_err());
    }

    #[test]
    fn delta_without_base_is_an_error() {
        let cfg = CodecConfig { chunk: 256, ..cfg_delta() };
        let data = vec![9u8; 1024];
        let base = encode_entry(&cfg, &data, None, 0, false);
        let delta = encode_entry(&cfg, &data, Some(&base.frame), 7, false);
        assert!(delta.delta);
        assert!(decode_frame(&delta.frame, None).is_err());
        // A wrong base fails the digest check instead of returning garbage.
        let wrong = vec![8u8; 1024];
        assert!(decode_frame(&delta.frame, Some(&wrong)).is_err());
    }

    #[test]
    fn incompressible_chunks_are_stored_raw() {
        let cfg = cfg_delta();
        // xorshift noise: every byte plane is dense, RLE cannot win.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let payload: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let out = encode_entry(&cfg, &payload, None, 0, false);
        // Wire = payload + frame overhead only (digest manifest + records).
        let overhead = out.frame.len() as i64 - payload.len() as i64;
        assert!(
            (0..1024).contains(&overhead),
            "noise must be stored raw with bounded overhead, got {overhead}"
        );
        assert_eq!(&decode_frame(&out.frame, None).unwrap()[..], &payload[..]);
    }

    #[test]
    fn quantize_bounds_error_and_rejects_opaque() {
        let values = [1.234567, -9.87654, 0.333333, f64::NAN, f64::INFINITY, -0.0];
        let payload = Bytes::from(f64_payload(&values));
        let tol = 1e-3;
        let q = quantize_payload(&payload, PayloadClass::F64Tail { offset: 8 }, tol).unwrap();
        assert_eq!(q.len(), payload.len());
        assert_eq!(&q[..8], &payload[..8], "length prefix untouched");
        for (i, w) in q[8..].chunks_exact(8).enumerate() {
            let got = f64::from_le_bytes(w.try_into().unwrap());
            let want = values[i];
            if want.is_finite() {
                assert!((got - want).abs() <= tol, "|{got} - {want}| > {tol}");
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "non-finite passes through");
            }
        }
        assert!(quantize_payload(&payload, PayloadClass::Opaque, tol).is_none());
        // Misaligned tail: refuse rather than corrupt.
        let odd = Bytes::from(vec![0u8; 13]);
        assert!(quantize_payload(&odd, PayloadClass::F64Tail { offset: 8 }, tol).is_none());
        // A lossy encode is flagged in the frame header and still decodes to
        // exactly the quantized payload (lossy-to-wire, lossless-from-wire).
        let out = encode_entry(&cfg_delta(), &q, None, 0, true);
        let header = parse_header(&out.frame).unwrap();
        assert!(header.is_lossy());
        assert_eq!(&decode_frame(&out.frame, None).unwrap()[..], &q[..]);
    }

    #[test]
    fn counters_accumulate() {
        let before = counters();
        let cfg = cfg_delta();
        let payload = vec![5u8; 4096];
        let _ = encode_entry(&cfg, &payload, None, 0, false);
        let after = counters();
        let d = after.since(&before);
        assert!(d.logical_bytes >= 4096);
        assert!(d.wire_bytes > 0);
        assert!(d.frames_full >= 1);
        let mut s = String::new();
        render_codec(&mut s);
        assert!(s.contains("gml_ckpt_wire_bytes_total"));
        assert!(s.contains("gml_ckpt_frames_total{kind=\"delta\"}"));
        assert!(s.contains("gml_ckpt_compression_ratio"));
    }

    proptest! {
        // Adversarial payload roundtrip: NaN/±0/inf/denormal f64 soups of
        // every alignment, empty and 1-element included, at level 0 and 1,
        // full and delta — decode must be bit-identical.
        #[test]
        fn codec_roundtrip_bit_identity(
            specials in prop::collection::vec(0u8..8, 0..64),
            raw_tail in prop::collection::vec(any::<u8>(), 0..41),
            chunk_exp in 6u32..10,
            level in 0u8..2,
        ) {
            let mut payload: Vec<u8> = Vec::new();
            for s in &specials {
                let v: f64 = match s {
                    0 => f64::NAN,
                    1 => -0.0,
                    2 => 0.0,
                    3 => f64::INFINITY,
                    4 => f64::NEG_INFINITY,
                    5 => 5e-324,          // smallest positive denormal
                    6 => f64::MIN_POSITIVE,
                    _ => 1.0 + *s as f64,
                };
                payload.extend_from_slice(&v.to_le_bytes());
            }
            payload.extend_from_slice(&raw_tail);
            let cfg = CodecConfig {
                mode: CodecMode::Delta,
                level,
                chunk: 1usize << chunk_exp,
                ..CodecConfig::raw()
            };
            let full = encode_entry(&cfg, &payload, None, 0, false);
            let round = decode_frame(&full.frame, None).unwrap();
            prop_assert_eq!(&round[..], &payload[..]);
            // Mutate one byte (if any) and delta against the base.
            let mut next = payload.clone();
            if !next.is_empty() {
                let mid = next.len() / 2;
                next[mid] = next[mid].wrapping_add(1);
            }
            let second = encode_entry(&cfg, &next, Some(&full.frame), 9, false);
            let base = decode_frame(&full.frame, None).unwrap();
            let got = decode_frame(
                &second.frame,
                if second.delta { Some(&base[..]) } else { None },
            ).unwrap();
            prop_assert_eq!(&got[..], &next[..]);
        }
    }
}
