//! Measurement harness: spins up a fresh runtime per data point and times
//! iterations, checkpoints and failure-recovery runs.

use std::time::Duration;

use apgas::prelude::*;
use apgas::runtime::Runtime;
use gml_apps::{
    LinReg, LogReg, PageRank, ResilientLinReg, ResilientLogReg, ResilientPageRank,
};
use gml_core::{
    AppResilientStore, ExecutorConfig, FailureInjector, GmlResult, ResilientExecutor,
    ResilientIterativeApp, RestoreMode, RunStats,
};

use crate::workloads::{linreg_cfg, logreg_cfg, pagerank_cfg_for, AppKind};

/// Median/min/max time per iteration at one place count. The paper reports
/// mean/min/max over 30 runs on a quiet cluster; on a single oversubscribed
/// machine the mean is hostage to scheduler outliers, so the central
/// tendency reported here is the median (EXPERIMENTS.md discusses this).
#[derive(Clone, Copy, Debug)]
pub struct IterTime {
    /// Place count of this data point.
    pub places: usize,
    /// Median per-iteration time (ms).
    pub median_ms: f64,
    /// Minimum per-iteration time (ms).
    pub min_ms: f64,
    /// Maximum per-iteration time (ms).
    pub max_ms: f64,
}

fn summarize(places: usize, times: &[Duration]) -> IterTime {
    let mut ms: Vec<f64> = times.iter().map(|t| t.as_secs_f64() * 1000.0).collect();
    ms.sort_by(f64::total_cmp);
    let median = if ms.is_empty() {
        0.0
    } else if ms.len() % 2 == 1 {
        ms[ms.len() / 2]
    } else {
        (ms[ms.len() / 2 - 1] + ms[ms.len() / 2]) / 2.0
    };
    let min = ms.first().copied().unwrap_or(0.0);
    let max = ms.last().copied().unwrap_or(0.0);
    IterTime { places, median_ms: median, min_ms: min, max_ms: max }
}

/// Figs 2–4: mean/min/max time per iteration of the *non-checkpointing*
/// program under a resilient or non-resilient runtime.
pub fn time_per_iteration(
    kind: AppKind,
    places: usize,
    resilient: bool,
    iterations: u64,
    runs: usize,
) -> IterTime {
    let mut all = Vec::with_capacity(runs * iterations as usize);
    for _ in 0..runs {
        let cfg = RuntimeConfig::new(places).resilient(resilient);
        let times: Vec<Duration> = Runtime::run(cfg, move |ctx| -> GmlResult<Vec<Duration>> {
            let world = ctx.world();
            Ok(match kind {
                AppKind::LinReg => LinReg::run_simple(ctx, linreg_cfg(iterations), &world)?.1,
                AppKind::LogReg => LogReg::run_simple(ctx, logreg_cfg(iterations), &world)?.1,
                AppKind::PageRank => {
                    PageRank::run_simple(ctx, pagerank_cfg_for(iterations, places), &world)?.1
                }
            })
        })
        .expect("runtime")
        .expect("benchmark run");
        all.extend(times);
    }
    summarize(places, &all)
}

fn run_resilient<A, F>(
    places: usize,
    spares: usize,
    make: F,
    exec_cfg: ExecutorConfig,
    kill_at: Option<u64>,
) -> (RunStats, usize)
where
    A: ResilientIterativeApp + 'static,
    F: FnOnce(&Ctx, &PlaceGroup) -> GmlResult<A> + Send + 'static,
{
    let cfg = RuntimeConfig::new(places).spares(spares).resilient(true);
    Runtime::run(cfg, move |ctx| -> GmlResult<(RunStats, usize)> {
        let world = ctx.world();
        let app = make(ctx, &world)?;
        let mut store = AppResilientStore::make(ctx)?;
        let exec = ResilientExecutor::new(exec_cfg);
        let (group, stats) = match kill_at {
            Some(at) => {
                // Kill the middle place of the group, as in Figs 5–7.
                let victim = world.place(world.len() / 2);
                let mut injected = FailureInjector::new(app, at, victim);
                exec.run(ctx, &mut injected, &world, &mut store)?
            }
            None => {
                let mut app = app;
                exec.run(ctx, &mut app, &world, &mut store)?
            }
        };
        Ok((stats, group.len()))
    })
    .expect("runtime")
    .expect("resilient run")
}

fn dispatch_resilient(
    kind: AppKind,
    places: usize,
    spares: usize,
    iterations: u64,
    exec_cfg: ExecutorConfig,
    kill_at: Option<u64>,
) -> (RunStats, usize) {
    match kind {
        AppKind::LinReg => run_resilient(
            places,
            spares,
            move |ctx, g| ResilientLinReg::make(ctx, linreg_cfg(iterations), g),
            exec_cfg,
            kill_at,
        ),
        AppKind::LogReg => run_resilient(
            places,
            spares,
            move |ctx, g| ResilientLogReg::make(ctx, logreg_cfg(iterations), g),
            exec_cfg,
            kill_at,
        ),
        AppKind::PageRank => run_resilient(
            places,
            spares,
            move |ctx, g| ResilientPageRank::make(ctx, pagerank_cfg_for(iterations, places), g),
            exec_cfg,
            kill_at,
        ),
    }
}

/// Table III: mean time per checkpoint (ms), running the resilient app with
/// a checkpoint every `interval` iterations and no failures.
pub fn checkpoint_time(
    kind: AppKind,
    places: usize,
    iterations: u64,
    interval: u64,
    runs: usize,
) -> f64 {
    let mut total_ms = 0.0;
    let mut count = 0u64;
    for _ in 0..runs {
        let exec_cfg = ExecutorConfig::new(interval, RestoreMode::Shrink);
        let (stats, _) = dispatch_resilient(kind, places, 0, iterations, exec_cfg, None);
        total_ms += stats.checkpoint_time.as_secs_f64() * 1000.0;
        count += stats.checkpoints;
    }
    total_ms / count.max(1) as f64
}

/// One total-runtime data point for Figs 5–7 / Table IV.
#[derive(Clone, Copy, Debug)]
pub struct RestoreRun {
    /// Place count of this data point.
    pub places: usize,
    /// Total wall-clock runtime (s).
    pub total_s: f64,
    /// Share of total time spent checkpointing (%).
    pub checkpoint_pct: f64,
    /// Share of total time spent restoring (%).
    pub restore_pct: f64,
    /// Number of restores performed.
    pub restores: u64,
    /// Size of the final place group.
    pub final_places: usize,
}

/// Figs 5–7: total runtime for `iterations` iterations with a checkpoint
/// every `interval` and (for `Some(mode)`) one failure at `kill_at`;
/// `None` runs the non-resilient no-failure baseline.
pub fn restore_total_time(
    kind: AppKind,
    places: usize,
    mode: Option<RestoreMode>,
    iterations: u64,
    interval: u64,
    kill_at: u64,
) -> RestoreRun {
    match mode {
        None => {
            // Non-resilient baseline: plain iteration under a non-resilient
            // runtime, no checkpoints, no failure.
            let t = std::time::Instant::now();
            let cfg = RuntimeConfig::new(places);
            Runtime::run(cfg, move |ctx| -> GmlResult<()> {
                let world = ctx.world();
                match kind {
                    AppKind::LinReg => {
                        LinReg::run_simple(ctx, linreg_cfg(iterations), &world)?;
                    }
                    AppKind::LogReg => {
                        LogReg::run_simple(ctx, logreg_cfg(iterations), &world)?;
                    }
                    AppKind::PageRank => {
                        PageRank::run_simple(ctx, pagerank_cfg_for(iterations, places), &world)?;
                    }
                }
                Ok(())
            })
            .expect("runtime")
            .expect("baseline run");
            RestoreRun {
                places,
                total_s: t.elapsed().as_secs_f64(),
                checkpoint_pct: 0.0,
                restore_pct: 0.0,
                restores: 0,
                final_places: places,
            }
        }
        Some(mode) => {
            let spares = if mode == RestoreMode::ReplaceRedundant { 1 } else { 0 };
            let exec_cfg = ExecutorConfig::new(interval, mode);
            let t = std::time::Instant::now();
            let (stats, final_places) =
                dispatch_resilient(kind, places, spares, iterations, exec_cfg, Some(kill_at));
            let total_s = t.elapsed().as_secs_f64();
            let total = stats.total_time.as_secs_f64().max(1e-12);
            RestoreRun {
                places,
                total_s,
                checkpoint_pct: 100.0 * stats.checkpoint_time.as_secs_f64() / total,
                restore_pct: 100.0 * stats.restore_time.as_secs_f64() / total,
                restores: stats.restores,
                final_places,
            }
        }
    }
}

/// Per-iteration activity profile under a resilient runtime (ablation: the
/// mechanistic explanation of why the regressions pay more resilient-finish
/// overhead than PageRank).
#[derive(Clone, Copy, Debug)]
pub struct IterationProfile {
    /// Place count of this data point.
    pub places: usize,
    /// Place-zero bookkeeping messages per iteration.
    pub ctl_per_iter: f64,
    /// Tasks spawned per iteration.
    pub tasks_per_iter: f64,
    /// Payload bytes shipped per iteration.
    pub bytes_per_iter: f64,
    /// Mean time per iteration (ms).
    pub ms_per_iter: f64,
}

/// Measure the runtime-activity counters per iteration for one app.
pub fn iteration_profile(kind: AppKind, places: usize, iterations: u64) -> IterationProfile {
    let cfg = RuntimeConfig::new(places).resilient(true);
    let (d, secs) = Runtime::run(cfg, move |ctx| -> GmlResult<_> {
        let world = ctx.world();
        // Build first so construction traffic is excluded.
        let t;
        let before;
        match kind {
            AppKind::LinReg => {
                let mut app = LinReg::make(ctx, linreg_cfg(iterations), &world)?;
                before = ctx.stats();
                t = std::time::Instant::now();
                for _ in 0..iterations {
                    app.iterate_once(ctx)?;
                }
            }
            AppKind::LogReg => {
                let mut app = LogReg::make(ctx, logreg_cfg(iterations), &world)?;
                before = ctx.stats();
                t = std::time::Instant::now();
                for _ in 0..iterations {
                    app.iterate_once(ctx)?;
                }
            }
            AppKind::PageRank => {
                let mut app = PageRank::make(ctx, pagerank_cfg_for(iterations, places), &world)?;
                before = ctx.stats();
                t = std::time::Instant::now();
                for _ in 0..iterations {
                    app.iterate_once(ctx)?;
                }
            }
        }
        Ok((ctx.stats().since(&before), t.elapsed().as_secs_f64()))
    })
    .expect("runtime")
    .expect("profile run");
    let n = iterations.max(1) as f64;
    IterationProfile {
        places,
        ctl_per_iter: d.ctl_total() as f64 / n,
        tasks_per_iter: d.tasks_spawned as f64 / n,
        bytes_per_iter: d.bytes_shipped as f64 / n,
        ms_per_iter: secs * 1000.0 / n,
    }
}

/// One checkpoint measured with and without double redundancy (ablation of
/// the store's next-place backup copies).
#[derive(Clone, Copy, Debug)]
pub struct RedundancyAblation {
    /// Checkpoint time with backup copies (ms).
    pub redundant_ms: f64,
    /// Checkpoint time without backup copies (ms).
    pub non_redundant_ms: f64,
    /// Bytes shipped with backup copies.
    pub redundant_bytes: u64,
    /// Bytes shipped without backup copies.
    pub non_redundant_bytes: u64,
}

/// Measure one full application checkpoint under both store variants.
/// Repeats each measurement and reports the median to tame scheduler noise.
pub fn redundancy_ablation(kind: AppKind, places: usize) -> RedundancyAblation {
    const REPS: usize = 5;
    let mut out = [(0.0, 0u64); 2];
    for (i, redundant) in [(0, true), (1, false)] {
        let mut times = Vec::with_capacity(REPS);
        let mut bytes = 0u64;
        for _ in 0..REPS {
            let cfg = RuntimeConfig::new(places).resilient(true);
            let (t_ms, b) = Runtime::run(cfg, move |ctx| -> GmlResult<(f64, u64)> {
                let world = ctx.world();
                let mut store = AppResilientStore::make_with_redundancy(ctx, redundant)?;
                store.set_current_iteration(0);
                let before = ctx.stats().bytes_shipped;
                let t = std::time::Instant::now();
                match kind {
                    AppKind::LinReg => {
                        let mut app = ResilientLinReg::make(ctx, linreg_cfg(1), &world)?;
                        app.checkpoint(ctx, &mut store)?;
                    }
                    AppKind::LogReg => {
                        let mut app = ResilientLogReg::make(ctx, logreg_cfg(1), &world)?;
                        app.checkpoint(ctx, &mut store)?;
                    }
                    AppKind::PageRank => {
                        let mut app =
                            ResilientPageRank::make(ctx, pagerank_cfg_for(1, places), &world)?;
                        app.checkpoint(ctx, &mut store)?;
                    }
                }
                Ok((t.elapsed().as_secs_f64() * 1000.0, ctx.stats().bytes_shipped - before))
            })
            .expect("runtime")
            .expect("ablation run");
            times.push(t_ms);
            bytes = b;
        }
        times.sort_by(f64::total_cmp);
        out[i] = (times[REPS / 2], bytes);
    }
    RedundancyAblation {
        redundant_ms: out[0].0,
        non_redundant_ms: out[1].0,
        redundant_bytes: out[0].1,
        non_redundant_bytes: out[1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_profile_smoke() {
        let p = iteration_profile(AppKind::PageRank, 2, 3);
        assert!(p.ctl_per_iter > 0.0, "resilient runs produce bookkeeping");
        assert!(p.tasks_per_iter > 0.0);
        assert!(p.bytes_per_iter > 0.0);
    }

    #[test]
    fn redundancy_ablation_smoke() {
        let a = redundancy_ablation(AppKind::PageRank, 2);
        assert!(a.redundant_bytes > a.non_redundant_bytes);
    }

    #[test]
    fn iteration_timing_smoke() {
        let t = time_per_iteration(AppKind::PageRank, 2, false, 3, 1);
        assert_eq!(t.places, 2);
        assert!(t.median_ms >= t.min_ms && t.median_ms <= t.max_ms);
        assert!(t.min_ms > 0.0);
    }

    #[test]
    fn checkpoint_timing_smoke() {
        let ms = checkpoint_time(AppKind::PageRank, 2, 4, 2, 1);
        assert!(ms > 0.0);
    }

    #[test]
    fn restore_run_smoke_all_modes() {
        for mode in [
            None,
            Some(RestoreMode::Shrink),
            Some(RestoreMode::ShrinkRebalance),
            Some(RestoreMode::ReplaceRedundant),
        ] {
            let r = restore_total_time(AppKind::PageRank, 3, mode, 8, 4, 5);
            assert!(r.total_s > 0.0, "{mode:?}");
            match mode {
                None => assert_eq!(r.restores, 0),
                Some(RestoreMode::ReplaceRedundant) => {
                    assert_eq!(r.restores, 1);
                    assert_eq!(r.final_places, 3);
                }
                Some(_) => {
                    assert_eq!(r.restores, 1);
                    assert_eq!(r.final_places, 2);
                }
            }
        }
    }
}
