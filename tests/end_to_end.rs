//! End-to-end integration tests: full applications driven by the resilient
//! executor across all restoration modes, verified against single-place
//! references.

use resilient_gml::prelude::*;

use apgas::runtime::{Runtime, RuntimeConfig};
use resilient_gml::apps::reference;
use resilient_gml::core::FailureInjector;

#[test]
fn pagerank_all_modes_match_failure_free_run() {
    let cfg = PageRankConfig {
        nodes_per_place: 30,
        out_degree: 4,
        iterations: 20,
        alpha: 0.85,
        seed: 2,
    };
    let expect =
        reference::pagerank(30 * 5, cfg.out_degree, cfg.seed, cfg.alpha, cfg.iterations as usize);
    for (mode, spares) in [
        (RestoreMode::Shrink, 0usize),
        (RestoreMode::ShrinkRebalance, 0),
        (RestoreMode::ReplaceRedundant, 2),
        (RestoreMode::ReplaceElastic, 0),
    ] {
        let expect = expect.clone();
        Runtime::run(RuntimeConfig::new(5).spares(spares).resilient(true), move |ctx| {
            let world = ctx.world();
            let app = ResilientPageRank::make(ctx, cfg, &world).unwrap();
            let mut injected = FailureInjector::new(app, 13, Place::new(3));
            let mut store = AppResilientStore::make(ctx).unwrap();
            let exec = ResilientExecutor::new(ExecutorConfig::new(6, mode));
            let (_, stats) = exec.run(ctx, &mut injected, &world, &mut store).unwrap();
            assert_eq!(stats.restores, 1, "{mode:?}");
            let ranks = injected.app.app.ranks(ctx).unwrap();
            assert!(
                ranks.max_abs_diff(&expect) < 1e-12,
                "{mode:?}: diff {}",
                ranks.max_abs_diff(&expect)
            );
        })
        .unwrap();
    }
}

#[test]
fn linreg_failure_at_each_phase_recovers() {
    // Kill at an iteration right before, on, and right after a checkpoint
    // boundary; every case must converge to the failure-free weights.
    let cfg = LinRegConfig {
        examples_per_place: 30,
        features: 5,
        iterations: 18,
        lambda: 0.0,
        seed: 8,
    };
    for kill_at in [5u64, 6, 7, 12, 17] {
        Runtime::run(RuntimeConfig::new(4).resilient(true), move |ctx| {
            let world = ctx.world();
            let (w_expect, _) = LinReg::run_simple(ctx, cfg, &world).unwrap();
            let app = ResilientLinReg::make(ctx, cfg, &world).unwrap();
            let mut injected = FailureInjector::new(app, kill_at, Place::new(2));
            let mut store = AppResilientStore::make(ctx).unwrap();
            let exec = ResilientExecutor::new(ExecutorConfig::new(6, RestoreMode::Shrink));
            exec.run(ctx, &mut injected, &world, &mut store).unwrap();
            let w = injected.app.app.weights(ctx).unwrap();
            assert!(
                w.max_abs_diff(&w_expect) < 1e-9,
                "kill at {kill_at}: diff {}",
                w.max_abs_diff(&w_expect)
            );
        })
        .unwrap();
    }
}

#[test]
fn logreg_rebalance_recovers_exactly() {
    let cfg = LogRegConfig {
        examples_per_place: 40,
        features: 6,
        iterations: 25,
        lambda: 1e-3,
        learning_rate: 1.0,
        seed: 10,
    };
    Runtime::run(RuntimeConfig::new(5).resilient(true), move |ctx| {
        let world = ctx.world();
        let (w_expect, _) = LogReg::run_simple(ctx, cfg, &world).unwrap();
        let app = ResilientLogReg::make(ctx, cfg, &world).unwrap();
        let mut injected = FailureInjector::new(app, 14, Place::new(4));
        let mut store = AppResilientStore::make(ctx).unwrap();
        let exec = ResilientExecutor::new(ExecutorConfig::new(10, RestoreMode::ShrinkRebalance));
        let (final_group, _) = exec.run(ctx, &mut injected, &world, &mut store).unwrap();
        assert_eq!(final_group.len(), 4);
        let w = injected.app.app.weights(ctx).unwrap();
        assert!(w.max_abs_diff(&w_expect) < 1e-9);
    })
    .unwrap();
}

#[test]
fn two_sequential_failures_with_spares_then_shrink() {
    // First failure consumes the only spare; the second must shrink.
    let cfg = PageRankConfig {
        nodes_per_place: 20,
        out_degree: 3,
        iterations: 24,
        alpha: 0.85,
        seed: 5,
    };
    Runtime::run(RuntimeConfig::new(4).spares(1).resilient(true), move |ctx| {
        let world = ctx.world();
        let expect = reference::pagerank(80, 3, 5, 0.85, 24);

        struct TwoKills {
            inner: ResilientPageRank,
            kills: Vec<(u64, Place)>,
        }
        impl ResilientIterativeApp for TwoKills {
            fn is_finished(&self, ctx: &Ctx, it: u64) -> bool {
                self.inner.is_finished(ctx, it)
            }
            fn step(&mut self, ctx: &Ctx, it: u64) -> GmlResult<()> {
                if let Some(pos) =
                    self.kills.iter().position(|(at, p)| *at == it && ctx.is_alive(*p))
                {
                    let (_, victim) = self.kills.remove(pos);
                    ctx.kill_place(victim)?;
                }
                self.inner.step(ctx, it)
            }
            fn checkpoint(&mut self, ctx: &Ctx, s: &mut AppResilientStore) -> GmlResult<()> {
                self.inner.checkpoint(ctx, s)
            }
            fn restore(
                &mut self,
                ctx: &Ctx,
                g: &PlaceGroup,
                s: &mut AppResilientStore,
                si: u64,
                rb: bool,
            ) -> GmlResult<()> {
                self.inner.restore(ctx, g, s, si, rb)
            }
        }

        let mut app = TwoKills {
            inner: ResilientPageRank::make(ctx, cfg, &world).unwrap(),
            kills: vec![(8, Place::new(1)), (16, Place::new(2))],
        };
        let mut store = AppResilientStore::make(ctx).unwrap();
        let exec = ResilientExecutor::new(ExecutorConfig::new(6, RestoreMode::ReplaceRedundant));
        let (final_group, stats) = exec.run(ctx, &mut app, &world, &mut store).unwrap();
        assert_eq!(stats.restores, 2);
        // First restore replaced (kept 4), second shrank (3 left).
        assert_eq!(final_group.len(), 3);
        let ranks = app.inner.app.ranks(ctx).unwrap();
        assert!(ranks.max_abs_diff(&expect) < 1e-12);
    })
    .unwrap();
}

#[test]
fn runtime_stats_show_resilience_costs() {
    // The observable counters behind the paper's Figs 2–4 and Table III:
    // resilient mode funnels bookkeeping through place zero, and
    // checkpointing ships bytes.
    let cfg = PageRankConfig {
        nodes_per_place: 20,
        out_degree: 3,
        iterations: 5,
        alpha: 0.85,
        seed: 1,
    };
    let ctl_resilient = Runtime::run(RuntimeConfig::new(3).resilient(true), move |ctx| {
        PageRank::run_simple(ctx, cfg, &ctx.world()).unwrap();
        ctx.stats().ctl_total()
    })
    .unwrap();
    let ctl_plain = Runtime::run(RuntimeConfig::new(3), move |ctx| {
        PageRank::run_simple(ctx, cfg, &ctx.world()).unwrap();
        ctx.stats().ctl_total()
    })
    .unwrap();
    assert_eq!(ctl_plain, 0);
    assert!(ctl_resilient > 100, "resilient finish generates bookkeeping traffic");

    let shipped = Runtime::run(RuntimeConfig::new(3).resilient(true), move |ctx| {
        let world = ctx.world();
        let mut app = ResilientPageRank::make(ctx, cfg, &world).unwrap();
        let mut store = AppResilientStore::make(ctx).unwrap();
        let before = ctx.stats().bytes_shipped;
        app.checkpoint(ctx, &mut store).unwrap();
        ctx.stats().bytes_shipped - before
    })
    .unwrap();
    assert!(shipped > 1000, "checkpoint ships data to backup places, got {shipped}");
}
