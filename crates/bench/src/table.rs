//! Plain-text table rendering for the harness binaries, plus CSV dumps so
//! results can be re-plotted.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple fixed-width table printer.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a new instance.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row of cells.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:>w$} |", c, w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let _ = writeln!(
            out,
            "|{}|",
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout and save a CSV copy under `target/paper-results/`.
    pub fn emit(&self, csv_name: &str) {
        println!("{}", self.render());
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        let dir = PathBuf::from("target/paper-results");
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(csv_name);
            if fs::write(&path, csv).is_ok() {
                println!("(csv saved to {})", path.display());
            }
        }
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format seconds.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(secs(1.5), "1.50");
        assert_eq!(pct(33.3), "33");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
