//! Failure drill: watch a `DistBlockMatrix` lose a place and come back.
//!
//! Reproduces Fig 1 of the paper in text form: a matrix distributed over 6
//! places is checkpointed, one place is killed, and the matrix is restored
//! (a) keeping the data grid — shrink, uneven load — and (b) repartitioning
//! — shrink-rebalance, even load. Data integrity is verified both ways.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use apgas::runtime::{Runtime, RuntimeConfig};
use resilient_gml::prelude::*;

fn layout_report(label: &str, m: &DistBlockMatrix) {
    println!("  {label}:");
    println!(
        "    grid: {} x {} blocks over {} places",
        m.grid().row_blocks(),
        m.grid().col_blocks(),
        m.group().len()
    );
    for (idx, p) in m.group().iter().enumerate() {
        let blocks = m.blocks_at(idx);
        let bar = "#".repeat(blocks * 2);
        println!("    place {:>2} holds {blocks} block(s) {bar}", p.id());
    }
}

fn main() {
    Runtime::run(RuntimeConfig::new(6).resilient(true), |ctx| {
        let world = ctx.world();
        let store = ResilientStore::make(ctx).expect("store");

        // 12x8 blocks over a 6x1 place grid: two block-rows per place.
        let mut m =
            DistBlockMatrix::make(ctx, 600, 400, 12, 1, 6, 1, &world, false).expect("make");
        m.init_with(ctx, |_, _, r0, c0, rows, cols| {
            BlockData::Dense(builder::random_dense(rows, cols, (r0 * 7919 + c0) as u64))
        })
        .expect("init");
        let reference = m.gather_dense(ctx).expect("gather");
        layout_report("initial layout", &m);

        let snap = m.make_snapshot(ctx, &store).expect("snapshot");
        println!(
            "  snapshot: {} blocks, {:.1} KiB (owner + next-place backup copies)",
            snap.entries.len(),
            snap.total_bytes() as f64 / 1024.0
        );

        println!("\n  !! killing place 3");
        ctx.kill_place(Place::new(3)).expect("kill");
        let survivors = world.without(&[Place::new(3)]);

        // (a) Shrink: same grid, blocks remapped, block-by-block restore.
        m.remake(ctx, &survivors, false).expect("remake shrink");
        m.restore_snapshot(ctx, &store, &snap).expect("restore shrink");
        layout_report("after SHRINK restore (same grid, uneven load)", &m);
        assert_eq!(m.gather_dense(ctx).expect("gather"), reference);
        println!("    data verified identical");

        // (b) Shrink-rebalance: grid recut, overlap-copy restore.
        m.remake(ctx, &survivors, true).expect("remake rebalance");
        m.restore_snapshot(ctx, &store, &snap).expect("restore rebalance");
        layout_report("after SHRINK-REBALANCE restore (grid recut, even load)", &m);
        assert_eq!(m.gather_dense(ctx).expect("gather"), reference);
        println!("    data verified identical");
    })
    .expect("runtime");
}
