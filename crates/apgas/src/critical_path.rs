//! Per-iteration critical-path reconstruction over causal trace events.
//!
//! The cost report decomposes iteration time into per-*counter* aggregates;
//! this module decomposes it along the *critical path*: for each executor
//! iteration (an `exec.step` span), it gathers every span that ran anywhere
//! in the world during that window, verifies the causal DAG the
//! `span_id`/`parent_id` links form, merges each place's busy intervals, and
//! reports which place carried the path, how the path splits into compute /
//! ship / ctl / idle-wait, and how badly the slowest place straggled behind
//! the median. HPX's resiliency work and ReStore (see PAPERS.md) both stress
//! that overhead must be attributed to the critical path rather than to
//! wall-clock sums — this is that attribution layer.
//!
//! **Honesty under drops.** The event rings overwrite their oldest entries
//! when full; an iteration whose window precedes a wrapped ring's oldest
//! retained event may be missing spans, so it is flagged
//! [`incomplete`](IterProfile::complete) instead of contributing a bogus
//! path.

use std::collections::{HashMap, HashSet};

use crate::trace::{Phase, SpanKind, TraceEvent};

/// How one span kind contributes to the critical-path breakdown.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub enum CostClass {
    /// Application work: remote task bodies, pool jobs, object
    /// snapshot/restore payload work.
    Compute,
    /// Data movement: serialization, store save/fetch traffic, checkpoint
    /// ships, and the sender side of `at`/`async_at` round trips.
    Ship,
    /// Resilient-finish control traffic to place zero.
    Ctl,
    /// Executor phases and failure instants — structural, not charged to
    /// any breakdown bucket.
    Structural,
}

/// Classify a span kind for the breakdown.
pub fn classify(kind: SpanKind) -> CostClass {
    match kind {
        SpanKind::AtRemote
        | SpanKind::AsyncTask
        | SpanKind::PoolRun
        | SpanKind::SnapshotObj
        | SpanKind::RestoreObj => CostClass::Compute,
        SpanKind::Encode
        | SpanKind::Decode
        | SpanKind::At
        | SpanKind::AsyncAt
        | SpanKind::StoreSave
        | SpanKind::StoreSaveBatch
        | SpanKind::StoreFetch
        | SpanKind::StoreDelete
        | SpanKind::CkptShip
        | SpanKind::CkptEncode
        | SpanKind::CkptDecode => CostClass::Ship,
        SpanKind::CtlSpawn | SpanKind::CtlTerm | SpanKind::CtlWait => CostClass::Ctl,
        SpanKind::Step
        | SpanKind::Checkpoint
        | SpanKind::Restore
        | SpanKind::KillPlace
        | SpanKind::PlaceDied
        | SpanKind::SpawnPlace
        // Replay/vote overhead is resilience bookkeeping, not application
        // compute: the replayed body's own spans carry the compute cost.
        | SpanKind::TaskReplay
        | SpanKind::TaskVote => CostClass::Structural,
    }
}

/// The critical-path profile of one executor iteration.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterProfile {
    /// The iteration number (the `exec.step` span's argument).
    pub iteration: u64,
    /// Wall time of the step span, nanoseconds.
    pub wall_nanos: u64,
    /// The critical path: the busiest single place's merged busy time inside
    /// the window, clamped to the wall. By construction
    /// `max-place-compute ≤ critical_path ≤ wall`.
    pub critical_path_nanos: u64,
    /// Compute share of the dominant place's path (merged intervals).
    pub compute_nanos: u64,
    /// Ship share, with compute-covered time subtracted (no double count).
    pub ship_nanos: u64,
    /// Ctl share, with compute- and ship-covered time subtracted.
    pub ctl_nanos: u64,
    /// Wall time not covered by the critical path: the iteration waited on
    /// nothing measurable (scheduling gaps, blocked collectives).
    pub idle_nanos: u64,
    /// The place whose merged busy time was the path.
    pub dominant_place: u32,
    /// Slowest place compute / median place compute (1.0 when balanced; 1.0
    /// when fewer than two places computed).
    pub straggler_ratio: f64,
    /// False when a wrapped ring may have lost events inside this window —
    /// the profile is then a lower bound, not a reconstruction.
    pub complete: bool,
}

/// A reconstructed causal DAG over one window's events, with validation
/// helpers for the test suite and the analyzer's sanity gates.
#[derive(Debug, Default)]
pub struct SpanDag {
    /// Edges child span id → parent span id (parent 0 = root, not stored).
    pub edges: HashMap<u64, u64>,
    /// Every span id seen in the window (any phase).
    pub nodes: HashSet<u64>,
}

impl SpanDag {
    /// Build the DAG from a window's events. Begin events count as nodes
    /// too: a span that never ended (e.g. one still open at a killed place
    /// when it died) is a legitimate causal parent — its Begin is always
    /// recorded before any child can capture it.
    pub fn build(events: &[TraceEvent]) -> SpanDag {
        let mut dag = SpanDag::default();
        for e in events {
            if e.span_id == 0 {
                continue;
            }
            dag.nodes.insert(e.span_id);
            if e.parent_id != 0 {
                dag.edges.insert(e.span_id, e.parent_id);
            }
        }
        dag
    }

    /// True when every parent edge lands on a node present in the window.
    /// Dangling parents mean the window (or a wrapped ring) lost the sender.
    pub fn is_complete(&self) -> bool {
        self.edges.values().all(|p| self.nodes.contains(p))
    }

    /// True when following parent links never cycles. Ids are allocated
    /// monotonically so a cycle would indicate corruption; the analyzer
    /// refuses to attribute paths over a cyclic graph.
    pub fn is_acyclic(&self) -> bool {
        for start in self.edges.keys() {
            let (mut cur, mut hops) = (*start, 0usize);
            while let Some(&p) = self.edges.get(&cur) {
                cur = p;
                hops += 1;
                if hops > self.edges.len() {
                    return false;
                }
            }
        }
        true
    }

    /// Depth of the longest parent chain (root spans have depth 0).
    pub fn max_depth(&self) -> usize {
        let mut deepest = 0;
        for start in self.edges.keys() {
            let (mut cur, mut hops) = (*start, 0usize);
            while let Some(&p) = self.edges.get(&cur) {
                cur = p;
                hops += 1;
                if hops > self.edges.len() {
                    break; // cyclic; is_acyclic() reports it
                }
            }
            deepest = deepest.max(hops);
        }
        deepest
    }
}

/// Merge `[start, end)` intervals and return total covered length.
fn merged_len(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in intervals.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                covered += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered
}

/// Total length of `a`'s merged coverage not covered by `b` (`b` merged).
fn len_minus(a: &mut [(u64, u64)], b: &[(u64, u64)]) -> u64 {
    // Merge `a` first — overlapping same-class spans (e.g. nested ctl spans)
    // must not double-count — then subtract by clipping each merged interval
    // against the (sorted, merged) b-intervals. Inputs are small (one
    // iteration's spans), so O(n·m) is fine and keeps the arithmetic
    // obviously correct.
    let merged = merge(a);
    let mut total = 0u64;
    for &(s, e) in merged.iter() {
        let mut cursor = s;
        for &(bs, be) in b {
            if be <= cursor {
                continue;
            }
            if bs >= e {
                break;
            }
            if bs > cursor {
                total += bs.min(e) - cursor;
            }
            cursor = cursor.max(be);
            if cursor >= e {
                break;
            }
        }
        if cursor < e {
            total += e - cursor;
        }
    }
    total
}

/// Merge intervals in place and return the merged, disjoint list.
fn merge(intervals: &mut [(u64, u64)]) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Reconstruct per-iteration critical-path profiles from a tracer's drained
/// events. `dropped` is the tracer's per-place wrap-loss count
/// ([`crate::trace::Tracer::dropped`]); iterations whose window may have
/// lost events are flagged incomplete. Returns profiles ordered by
/// iteration.
pub fn analyze(events: &[TraceEvent], dropped: &[u64]) -> Vec<IterProfile> {
    // Step windows: each End event of an exec.step span.
    let mut steps: Vec<(u64, u64, u64)> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Step && e.phase == Phase::End)
        .map(|e| (e.arg, e.t_nanos.saturating_sub(e.dur_nanos), e.t_nanos))
        .collect();
    steps.sort_unstable();
    // Per-place floor: times earlier than a wrapped ring's oldest retained
    // event are unreliable for that place.
    let mut floors: HashMap<u32, u64> = HashMap::new();
    for (place, &lost) in dropped.iter().enumerate() {
        if lost > 0 {
            let oldest = events
                .iter()
                .filter(|e| e.place == place as u32)
                .map(|e| e.t_nanos)
                .min()
                .unwrap_or(u64::MAX);
            floors.insert(place as u32, oldest);
        }
    }
    let mut out = Vec::with_capacity(steps.len());
    for (iteration, w0, w1) in steps {
        let wall = w1 - w0;
        // Gather the window's drawn events (leaf work: ends + instants).
        let window: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| {
                e.phase == Phase::End
                    && e.kind != SpanKind::Step
                    && e.t_nanos.saturating_sub(e.dur_nanos) < w1
                    && e.t_nanos > w0
            })
            .collect();
        let complete = !floors.values().any(|&floor| w0 < floor);
        // Per-place interval sets, total and by class.
        let mut busy: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        let mut by_class: HashMap<(u32, CostClass), Vec<(u64, u64)>> = HashMap::new();
        for e in &window {
            let s = e.t_nanos.saturating_sub(e.dur_nanos).max(w0);
            let t = e.t_nanos.min(w1);
            if s >= t {
                continue;
            }
            busy.entry(e.place).or_default().push((s, t));
            let class = classify(e.kind);
            if class != CostClass::Structural {
                by_class.entry((e.place, class)).or_default().push((s, t));
            }
        }
        // The path: the busiest place's merged coverage, clamped to wall.
        let (mut dominant_place, mut path) = (0u32, 0u64);
        for (&place, iv) in busy.iter_mut() {
            let len = merged_len(iv).min(wall);
            if len > path || (len == path && place < dominant_place) {
                dominant_place = place;
                path = len;
            }
        }
        // Breakdown on the dominant place, with overlap subtracted in
        // compute > ship > ctl priority so the parts never exceed the path.
        let mut compute_iv =
            by_class.remove(&(dominant_place, CostClass::Compute)).unwrap_or_default();
        let compute_m = merge(&mut compute_iv);
        let compute = compute_m.iter().map(|(s, e)| e - s).sum::<u64>().min(wall);
        let mut ship_iv = by_class.remove(&(dominant_place, CostClass::Ship)).unwrap_or_default();
        let ship = len_minus(&mut ship_iv, &compute_m).min(wall.saturating_sub(compute));
        let mut cover = compute_m.clone();
        cover.extend(merge(&mut ship_iv));
        let cover = merge(&mut cover);
        let mut ctl_iv = by_class.remove(&(dominant_place, CostClass::Ctl)).unwrap_or_default();
        let ctl = len_minus(&mut ctl_iv, &cover).min(wall.saturating_sub(compute + ship));
        // Straggler ratio over per-place compute coverage.
        let mut computes: Vec<u64> = busy
            .keys()
            .map(|&p| {
                let mut iv = by_class.remove(&(p, CostClass::Compute)).unwrap_or_default();
                if p == dominant_place {
                    compute
                } else {
                    merged_len(&mut iv).min(wall)
                }
            })
            .filter(|&n| n > 0)
            .collect();
        computes.sort_unstable();
        let straggler_ratio = if computes.len() >= 2 {
            // Lower-middle median: biased *against* the straggler, so the
            // ratio never under-reports a genuinely slow place.
            let median = computes[(computes.len() - 1) / 2];
            if median == 0 {
                1.0
            } else {
                *computes.last().unwrap() as f64 / median as f64
            }
        } else {
            1.0
        };
        out.push(IterProfile {
            iteration,
            wall_nanos: wall,
            critical_path_nanos: path,
            compute_nanos: compute,
            ship_nanos: ship,
            ctl_nanos: ctl,
            idle_nanos: wall.saturating_sub(path),
            dominant_place,
            straggler_ratio,
            complete,
        });
    }
    out
}

/// Max per-place *compute* coverage inside a step window — the lower bound
/// the acceptance criterion pins the critical path against. Exposed for
/// tests; `analyze` maintains `critical_path ≥ this` by construction since
/// compute intervals are a subset of the busy intervals.
pub fn max_place_compute(events: &[TraceEvent], w0: u64, w1: u64) -> u64 {
    let mut per_place: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for e in events {
        if e.phase != Phase::End || classify(e.kind) != CostClass::Compute {
            continue;
        }
        let s = e.t_nanos.saturating_sub(e.dur_nanos).max(w0);
        let t = e.t_nanos.min(w1);
        if s < t {
            per_place.entry(e.place).or_default().push((s, t));
        }
    }
    per_place.values_mut().map(|iv| merged_len(iv).min(w1 - w0)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: SpanKind,
        place: u32,
        begin: u64,
        end: u64,
        span_id: u64,
        parent_id: u64,
        arg: u64,
    ) -> TraceEvent {
        TraceEvent {
            t_nanos: end,
            dur_nanos: end - begin,
            place,
            phase: Phase::End,
            kind,
            label: "",
            arg,
            span_id,
            parent_id,
        }
    }

    #[test]
    fn merged_len_handles_overlap_and_gaps() {
        assert_eq!(merged_len(&mut vec![(0, 10), (5, 15), (20, 25)]), 20);
        assert_eq!(merged_len(&mut vec![]), 0);
        assert_eq!(merged_len(&mut vec![(3, 3)]), 0);
    }

    #[test]
    fn len_minus_subtracts_covered_time() {
        let mut a = vec![(0, 10), (20, 30)];
        let b = vec![(5, 25)];
        assert_eq!(len_minus(&mut a, &b), 5 + 5);
        let mut a2 = vec![(0, 4)];
        assert_eq!(len_minus(&mut a2, &[]), 4);
        let mut a3 = vec![(0, 4)];
        assert_eq!(len_minus(&mut a3, &[(0, 4)]), 0);
        // Overlapping a-intervals count their union, not their sum.
        let mut a4 = vec![(0, 30), (10, 40)];
        assert_eq!(len_minus(&mut a4, &[(5, 15)]), 5 + 25);
    }

    #[test]
    fn analyze_attributes_path_to_busiest_place() {
        // Step window [0, 100]; place 1 computes 60ns, place 2 computes 30ns.
        let events = vec![
            ev(SpanKind::Step, 0, 0, 100, 1, 0, 7),
            ev(SpanKind::AtRemote, 1, 10, 70, 2, 1, 0),
            ev(SpanKind::AtRemote, 2, 10, 40, 3, 1, 0),
            ev(SpanKind::Encode, 1, 70, 80, 4, 2, 0),
        ];
        let profiles = analyze(&events, &[0, 0, 0]);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.iteration, 7);
        assert_eq!(p.wall_nanos, 100);
        assert_eq!(p.dominant_place, 1);
        assert_eq!(p.critical_path_nanos, 70, "60 compute + 10 encode merged");
        assert_eq!(p.compute_nanos, 60);
        assert_eq!(p.ship_nanos, 10);
        assert_eq!(p.idle_nanos, 30);
        assert!(p.complete);
        // Bounds the acceptance criterion pins.
        assert!(p.critical_path_nanos <= p.wall_nanos);
        assert!(p.critical_path_nanos >= max_place_compute(&events, 0, 100));
        assert!((p.straggler_ratio - 2.0).abs() < 1e-9, "60 vs median 30");
    }

    #[test]
    fn analyze_flags_drop_affected_iterations() {
        let events = vec![
            ev(SpanKind::Step, 0, 0, 100, 1, 0, 0),
            ev(SpanKind::Step, 0, 200, 300, 2, 0, 1),
            // Place 1's oldest retained event is at t=150: iteration 0's
            // window precedes it, iteration 1's does not.
            ev(SpanKind::AtRemote, 1, 150, 160, 3, 1, 0),
            ev(SpanKind::AtRemote, 1, 210, 260, 4, 2, 0),
        ];
        let profiles = analyze(&events, &[0, 5]);
        assert_eq!(profiles.len(), 2);
        assert!(!profiles[0].complete, "window before the wrap floor is suspect");
        assert!(profiles[1].complete);
        // Without drops both are complete.
        let clean = analyze(&events, &[0, 0]);
        assert!(clean[0].complete && clean[1].complete);
    }

    #[test]
    fn dag_validation_accepts_forests_and_rejects_dangling_parents() {
        let good = vec![
            ev(SpanKind::Step, 0, 0, 10, 1, 0, 0),
            ev(SpanKind::At, 0, 1, 5, 2, 1, 0),
            ev(SpanKind::AtRemote, 1, 2, 4, 3, 2, 0),
        ];
        let dag = SpanDag::build(&good);
        assert!(dag.is_complete());
        assert!(dag.is_acyclic());
        assert_eq!(dag.max_depth(), 2);

        let dangling = vec![ev(SpanKind::AtRemote, 1, 2, 4, 3, 99, 0)];
        let dag = SpanDag::build(&dangling);
        assert!(!dag.is_complete(), "parent 99 was never drawn");
        assert!(dag.is_acyclic());
    }

    #[test]
    fn dag_detects_cycles() {
        // Hand-forged corruption: 2 → 3 → 2.
        let mut dag = SpanDag::default();
        dag.nodes.extend([2, 3]);
        dag.edges.insert(2, 3);
        dag.edges.insert(3, 2);
        assert!(!dag.is_acyclic());
    }

    #[test]
    fn straggler_ratio_is_one_when_balanced_or_solo() {
        let events = vec![
            ev(SpanKind::Step, 0, 0, 100, 1, 0, 0),
            ev(SpanKind::AtRemote, 1, 0, 50, 2, 1, 0),
            ev(SpanKind::AtRemote, 2, 0, 50, 3, 1, 0),
        ];
        let p = &analyze(&events, &[])[0];
        assert!((p.straggler_ratio - 1.0).abs() < 1e-9);
        let solo = vec![
            ev(SpanKind::Step, 0, 0, 100, 1, 0, 0),
            ev(SpanKind::AtRemote, 1, 0, 50, 2, 1, 0),
        ];
        let p = &analyze(&solo, &[])[0];
        assert!((p.straggler_ratio - 1.0).abs() < 1e-9, "one computing place cannot straggle");
    }
}
