//! Vendored, offline subset of the `criterion` benchmarking API used by this
//! workspace: `Criterion`, `benchmark_group`/`bench_function`, `Bencher::
//! {iter, iter_batched}`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement model: a short calibration pass sizes the per-sample
//! iteration count so one sample costs roughly [`TARGET_SAMPLE`]; then
//! `sample_size` wall-clock samples are taken and min/mean/max per-iteration
//! times are reported on stdout as `group/name  mean ...`. Good enough to
//! compare codec fast paths and track perf trajectory; not a statistics
//! suite.

use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

const TARGET_SAMPLE: Duration = Duration::from_millis(10);
const CALIBRATION_BUDGET: Duration = Duration::from_millis(50);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// One recorded benchmark result (per-iteration nanoseconds).
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
}

/// Top-level benchmark driver; collects results from every group.
pub struct Criterion {
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free arg.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test");
        Criterion { filter, results: Vec::new() }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(id.clone(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// All results recorded so far (used by JSON-emitting harness bins).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one<F>(&mut self, name: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { sample_size, samples_ns: Vec::new(), iters_per_sample: 0 };
        f(&mut b);
        if b.samples_ns.is_empty() {
            return;
        }
        let n = b.samples_ns.len();
        let mean = b.samples_ns.iter().sum::<f64>() / n as f64;
        let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{name:<52} mean {:>12}  min {:>12}  max {:>12}  ({n} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            b.iters_per_sample,
        );
        self.results.push(BenchResult { name, mean_ns: mean, min_ns: min, max_ns: max, samples: n });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size;
        self.criterion.run_one(full, n, f);
        self
    }

    pub fn finish(self) {}
}

/// Controls how `iter_batched` amortizes setup cost; the distinction is
/// irrelevant to this harness (setup is always untimed, batch = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine` back-to-back: calibrate, then take samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: how many iterations fit in the target sample time?
        let cal_start = Instant::now();
        let mut cal_iters: u64 = 0;
        while cal_start.elapsed() < CALIBRATION_BUDGET && cal_iters < 1_000_000 {
            hint::black_box(routine());
            cal_iters += 1;
        }
        let per_iter = cal_start.elapsed().as_nanos() as f64 / cal_iters.max(1) as f64;
        let iters = ((TARGET_SAMPLE.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            self.samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` with a fresh untimed `setup` product per invocation.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibration with untimed setup.
        let mut cal_iters: u64 = 0;
        let mut cal_spent = Duration::ZERO;
        while cal_spent < CALIBRATION_BUDGET && cal_iters < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            hint::black_box(routine(input));
            cal_spent += t0.elapsed();
            cal_iters += 1;
        }
        let per_iter = cal_spent.as_nanos() as f64 / cal_iters.max(1) as f64;
        let iters = ((TARGET_SAMPLE.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                hint::black_box(routine(input));
                spent += t0.elapsed();
            }
            self.samples_ns.push(spent.as_nanos() as f64 / iters as f64);
        }
    }
}

/// `criterion_group!(name, bench_fn, ...)` — a function running each bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// `criterion_main!(group, ...)` — the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_records_results() {
        let mut c = Criterion { filter: None, results: Vec::new() };
        tiny_bench(&mut c);
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].mean_ns > 0.0);
        assert!(c.results()[0].name.starts_with("shim/"));
    }
}
