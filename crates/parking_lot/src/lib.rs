//! Vendored, offline subset of `parking_lot`: `Mutex`, `RwLock` and
//! `Condvar` with the parking_lot calling conventions (no poison `Result`s,
//! `Condvar::wait(&mut guard)`), implemented over `std::sync`. Poisoning is
//! deliberately swallowed — a panicking task must not wedge every other
//! place's dispatcher, mirroring parking_lot's poison-free semantics.

use std::ops::{Deref, DerefMut};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option only so Condvar::wait can temporarily take the std guard out.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { guard: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified, releasing `guard`'s lock while waiting
    /// (parking_lot signature: the guard is re-armed in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        guard.guard = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Timed wait; returns `true` if the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_reacquires_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready = false; // prove we hold the lock after wait
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
        assert!(!*pair.0.lock());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
