//! Linear Regression via conjugate gradient on a dense `DistBlockMatrix`
//! (the paper's LinReg benchmark).
//!
//! Trains ridge regression `(XᵀX + λI) w = Xᵀ y` by CG. Every iteration
//! runs two distributed matrix-vector products (`X·p`, then `Xᵀ·(X·p)` with
//! its allreduce) plus several duplicated-vector updates — many `finish`
//! constructs per iteration, which is why resilient X10 costs LinReg up to
//! ~120% in the paper's Fig 2.

use std::time::{Duration, Instant};

use apgas::prelude::*;
use gml_core::{
    AppResilientStore, DistBlockMatrix, DistVector, DupVector, GmlResult,
    ResilientIterativeApp,
};
use gml_matrix::{builder, BlockData, Vector};

/// Workload parameters (weak scaling: examples grow with the group size).
#[derive(Clone, Copy, Debug)]
pub struct LinRegConfig {
    /// Training examples per place.
    pub examples_per_place: usize,
    /// Model features.
    pub features: usize,
    /// CG iterations.
    pub iterations: u64,
    /// Ridge regularisation λ.
    pub lambda: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LinRegConfig {
    fn default() -> Self {
        LinRegConfig {
            examples_per_place: 1000,
            features: 50,
            iterations: 30,
            lambda: 1e-6,
            seed: 21,
        }
    }
}

// ===== TABLE2 NONRESILIENT BEGIN =====
/// The LinReg program state.
pub struct LinReg {
    /// The workload configuration.
    pub cfg: LinRegConfig,
    group: PlaceGroup,
    /// Training examples (dense, row-block-distributed).
    x: DistBlockMatrix,
    /// Labels (distributed, row-aligned with `x`).
    y: DistVector,
    /// Model weights and CG state (duplicated, `features` long).
    w: DupVector,
    r: DupVector,
    p: DupVector,
    q: DupVector,
    /// Temporary `X·p` (distributed, row-aligned with `x`).
    tmp: DistVector,
    /// CG residual norm² (recomputable from `r`).
    rho: f64,
}

impl LinReg {
    /// Build the training set over `group` and initialise the CG state.
    pub fn make(ctx: &Ctx, cfg: LinRegConfig, group: &PlaceGroup) -> GmlResult<Self> {
        let m = cfg.examples_per_place * group.len();
        let f = cfg.features;
        let places = group.len();
        let x = DistBlockMatrix::make(ctx, m, f, places, 1, places, 1, group, false)?;
        let seed = cfg.seed;
        x.init_with(ctx, move |_, _, r0, _, rows, cols| {
            BlockData::Dense(builder::random_dense_rows(cols, seed, r0, r0 + rows))
        })?;
        // Hidden weights generate the labels: y = X·w*.
        let w_star = DupVector::make(ctx, f, group)?;
        let star_seed = cfg.seed.wrapping_add(1);
        w_star.init(ctx, move |i| {
            builder::random_vector(i + 1, star_seed).get(i)
        })?;
        let y = x.make_aligned_vector(ctx)?;
        x.mult(ctx, &y, &w_star)?;
        // CG state: w = 0; r = Xᵀy; p = r; rho = r·r.
        let w = DupVector::make(ctx, f, group)?;
        let r = DupVector::make(ctx, f, group)?;
        x.mult_trans(ctx, &r, &y)?;
        let p = DupVector::make(ctx, f, group)?;
        p.copy_from_all(ctx, &r)?;
        let q = DupVector::make(ctx, f, group)?;
        let tmp = x.make_aligned_vector(ctx)?;
        let rho = r.read_local(ctx)?.norm2_sq();
        Ok(LinReg { cfg, group: group.clone(), x, y, w, r, p, q, tmp, rho })
    }

    /// One CG iteration.
    pub fn iterate_once(&mut self, ctx: &Ctx) -> GmlResult<()> {
        self.x.mult(ctx, &self.tmp, &self.p)?; //      tmp = X·p
        self.x.mult_trans(ctx, &self.q, &self.tmp)?; // q = Xᵀ·tmp
        self.q.axpy_all(ctx, self.cfg.lambda, &self.p)?; // q += λ·p
        let pq = self.p.dot_local(ctx, &self.q)?;
        if pq == 0.0 {
            return Ok(()); // converged exactly
        }
        let alpha = self.rho / pq;
        self.w.axpy_all(ctx, alpha, &self.p)?; //  w += α·p
        self.r.axpy_all(ctx, -alpha, &self.q)?; // r -= α·q
        let rho_new = self.r.read_local(ctx)?.norm2_sq();
        let beta = rho_new / self.rho;
        self.p.scale_all(ctx, beta)?; //           p = r + β·p
        self.p.axpy_all(ctx, 1.0, &self.r)?;
        self.rho = rho_new;
        Ok(())
    }

    /// The trained weights (root copy).
    pub fn weights(&self, ctx: &Ctx) -> GmlResult<Vector> {
        self.w.read_local(ctx)
    }

    /// Residual norm² of the normal equations.
    pub fn residual(&self) -> f64 {
        self.rho
    }

    /// Run the non-resilient program, returning final weights and each
    /// iteration's wall time.
    pub fn run_simple(
        ctx: &Ctx,
        cfg: LinRegConfig,
        group: &PlaceGroup,
    ) -> GmlResult<(Vector, Vec<Duration>)> {
        let mut lr = LinReg::make(ctx, cfg, group)?;
        let mut times = Vec::with_capacity(cfg.iterations as usize);
        for _ in 0..cfg.iterations {
            let t = Instant::now();
            lr.iterate_once(ctx)?;
            times.push(t.elapsed());
        }
        Ok((lr.weights(ctx)?, times))
    }
}
// ===== TABLE2 NONRESILIENT END =====

// ===== TABLE2 RESILIENT BEGIN =====
/// LinReg under the resilient iterative framework.
pub struct ResilientLinReg {
    /// The wrapped application.
    pub app: LinReg,
}

impl ResilientLinReg {
    /// Build the application over `group`.
    pub fn make(ctx: &Ctx, cfg: LinRegConfig, group: &PlaceGroup) -> GmlResult<Self> {
        Ok(ResilientLinReg { app: LinReg::make(ctx, cfg, group)? })
    }
}

impl ResilientIterativeApp for ResilientLinReg {
    fn is_finished(&self, _ctx: &Ctx, iteration: u64) -> bool {
        iteration >= self.app.cfg.iterations
    }

    fn step(&mut self, ctx: &Ctx, _iteration: u64) -> GmlResult<()> {
        self.app.iterate_once(ctx)
    }

    // ===== TABLE2 CHECKPOINT BEGIN =====
    fn checkpoint(&mut self, ctx: &Ctx, store: &mut AppResilientStore) -> GmlResult<()> {
        store.start_new_snapshot();
        store.save_read_only(ctx, &self.app.x)?;
        store.save_read_only(ctx, &self.app.y)?;
        store.save(ctx, &self.app.w)?;
        store.save(ctx, &self.app.r)?;
        store.save(ctx, &self.app.p)?;
        store.commit(ctx)
    }
    // ===== TABLE2 CHECKPOINT END =====

    // ===== TABLE2 RESTORE BEGIN =====
    fn restore(
        &mut self,
        ctx: &Ctx,
        new_places: &PlaceGroup,
        store: &mut AppResilientStore,
        _snapshot_iteration: u64,
        rebalance: bool,
    ) -> GmlResult<()> {
        let a = &mut self.app;
        a.x.remake(ctx, new_places, rebalance)?;
        let (splits, owners) = a.x.aligned_layout()?;
        a.y.remake_with_layout(ctx, splits.clone(), owners.clone(), new_places)?;
        a.tmp.remake_with_layout(ctx, splits, owners, new_places)?;
        a.w.remake(ctx, new_places)?;
        a.r.remake(ctx, new_places)?;
        a.p.remake(ctx, new_places)?;
        a.q.remake(ctx, new_places)?;
        store.restore(ctx, &mut [&mut a.x, &mut a.y, &mut a.w, &mut a.r, &mut a.p])?;
        a.rho = a.r.read_local(ctx)?.norm2_sq();
        a.group = new_places.clone();
        Ok(())
    }
    // ===== TABLE2 RESTORE END =====
}
// ===== TABLE2 RESILIENT END =====

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use apgas::runtime::{Runtime, RuntimeConfig};
    use gml_core::{ExecutorConfig, ResilientExecutor, RestoreMode};

    fn small_cfg() -> LinRegConfig {
        LinRegConfig {
            examples_per_place: 40,
            features: 6,
            iterations: 20,
            lambda: 0.0,
            seed: 5,
        }
    }

    #[test]
    fn distributed_matches_reference_cg() {
        Runtime::run(RuntimeConfig::new(3).resilient(true), |ctx| {
            let cfg = small_cfg();
            let (w, _) = LinReg::run_simple(ctx, cfg, &ctx.world()).unwrap();
            let (x, w_star) = reference::training_matrix(120, cfg.features, cfg.seed);
            let y = x.mult_vec(&w_star);
            let expect = reference::linreg_cg(&x, &y, cfg.lambda, cfg.iterations as usize);
            assert!(
                w.max_abs_diff(&expect) < 1e-8,
                "distributed CG ≈ sequential CG (diff {})",
                w.max_abs_diff(&expect)
            );
            // And CG on noiseless data recovers the hidden weights.
            assert!(w.max_abs_diff(&w_star) < 1e-5);
        })
        .unwrap();
    }

    #[test]
    fn residual_decreases() {
        Runtime::run(RuntimeConfig::new(2).resilient(true), |ctx| {
            let mut lr = LinReg::make(ctx, small_cfg(), &ctx.world()).unwrap();
            let r0 = lr.residual();
            for _ in 0..5 {
                lr.iterate_once(ctx).unwrap();
            }
            assert!(lr.residual() < r0 * 1e-2, "CG reduces the residual fast");
        })
        .unwrap();
    }

    #[test]
    fn resilient_run_with_failure_recovers_exactly() {
        for mode in [RestoreMode::Shrink, RestoreMode::ShrinkRebalance] {
            Runtime::run(RuntimeConfig::new(4).resilient(true), move |ctx| {
                let cfg = small_cfg();
                let g = ctx.world();
                // Failure-free baseline.
                let (w_expect, _) = LinReg::run_simple(ctx, cfg, &g).unwrap();

                struct Killer {
                    inner: ResilientLinReg,
                    done: bool,
                }
                impl ResilientIterativeApp for Killer {
                    fn is_finished(&self, ctx: &Ctx, it: u64) -> bool {
                        self.inner.is_finished(ctx, it)
                    }
                    fn step(&mut self, ctx: &Ctx, it: u64) -> GmlResult<()> {
                        if it == 11 && !self.done {
                            self.done = true;
                            ctx.kill_place(Place::new(1))?;
                        }
                        self.inner.step(ctx, it)
                    }
                    fn checkpoint(
                        &mut self,
                        ctx: &Ctx,
                        s: &mut AppResilientStore,
                    ) -> GmlResult<()> {
                        self.inner.checkpoint(ctx, s)
                    }
                    fn restore(
                        &mut self,
                        ctx: &Ctx,
                        g: &PlaceGroup,
                        s: &mut AppResilientStore,
                        si: u64,
                        rb: bool,
                    ) -> GmlResult<()> {
                        self.inner.restore(ctx, g, s, si, rb)
                    }
                }
                let mut killer = Killer {
                    inner: ResilientLinReg::make(ctx, cfg, &g).unwrap(),
                    done: false,
                };
                let mut store = AppResilientStore::make(ctx).unwrap();
                let exec = ResilientExecutor::new(ExecutorConfig::new(10, mode));
                let (final_group, stats) = exec.run(ctx, &mut killer, &g, &mut store).unwrap();
                assert_eq!(final_group.len(), 3);
                assert_eq!(stats.restores, 1);
                let w = killer.inner.app.weights(ctx).unwrap();
                assert!(
                    w.max_abs_diff(&w_expect) < 1e-9,
                    "mode {mode:?}: rollback re-execution reproduces the run (diff {})",
                    w.max_abs_diff(&w_expect)
                );
            })
            .unwrap();
        }
    }
}
