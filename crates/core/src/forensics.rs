//! The failure-forensics flight recorder.
//!
//! When the executor restores after a place failure, the interesting state —
//! who was dead, what the resilient-finish ledger still had pending, which
//! snapshot replicas survived, and *why* the executor picked the restore
//! mode it did — is gone moments later: the group is rebuilt, the ledger
//! drains, the next checkpoint re-establishes redundancy. This module
//! captures all of it at the restore point as one [`PostMortem`] bundle,
//! serialized as plain JSON (validated with the tracer's built-in parser, so
//! the workspace stays dependency-free). [`ResilientExecutor`] attaches one
//! bundle per restore to the [`CostReport`]; set `GML_FORENSICS_DIR` to also
//! write each bundle to disk as `postmortem-<n>.json`.
//!
//! [`ResilientExecutor`]: crate::framework::ResilientExecutor
//! [`CostReport`]: crate::report::CostReport

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use apgas::prelude::*;
use apgas::trace::{critical_path, Phase};

use crate::snapshot::Snapshot;
use crate::store::{PlaceInventory, ResilientStore, SnapshotAudit};

/// How many trailing trace events per place a bundle retains.
const TRACE_TAIL_PER_PLACE: usize = 64;

/// How many trailing per-iteration critical-path rows a bundle retains.
const PATH_ROWS: usize = 8;

/// Why the executor restored the way it did: the configured mode, what
/// actually happened (fallbacks included), and the inputs to that decision.
#[derive(Clone, Debug)]
pub struct RestoreDecision {
    /// The [`RestoreMode`](crate::framework::RestoreMode) label the executor
    /// was configured with.
    pub configured_mode: &'static str,
    /// The label of what actually ran — differs from `configured_mode` when
    /// a replace mode fell back to a shrink variant. Matches the label on
    /// the corresponding `exec.restore` trace span by construction.
    pub effective_label: &'static str,
    /// Whether the data grid was repartitioned.
    pub rebalance: bool,
    /// One human-readable sentence explaining the choice.
    pub reason: String,
    /// The dead places this restore reacted to.
    pub dead_places: Vec<u32>,
    /// Spare places that were live when the decision was made.
    pub live_spares: Vec<u32>,
    /// Places created elastically for this restore.
    pub places_spawned: Vec<u32>,
    /// The iteration rolled back to.
    pub rolled_back_to: u64,
    /// Which restore attempt of this recovery succeeded (> 1 when another
    /// place died mid-restore).
    pub attempt: u32,
    /// For a `silent_error` restore: the output digest recorded when the
    /// step computed it. `None` for fail-stop (dead-place) restores.
    pub expected_digest: Option<u64>,
    /// For a `silent_error` restore: the mismatching digest observed at the
    /// commit boundary. `None` for fail-stop restores.
    pub observed_digest: Option<u64>,
}

/// A post-mortem bundle: everything worth knowing about the runtime at the
/// moment one restore completed.
#[derive(Clone, Debug)]
pub struct PostMortem {
    /// 1-based restore ordinal within the run (equals `RunStats::restores`
    /// at capture time).
    pub seq: u64,
    /// Capture time, nanoseconds since the tracer's epoch (runtime start) —
    /// directly comparable to `trace_tail[i].t_nanos`.
    pub captured_at_nanos: u64,
    /// Compute-pool worker count ([`apgas::pool::workers`]) — recorded so a
    /// restored replay can be compared against the failure-free run knowing
    /// the intra-place parallelism it ran with (results are bit-identical
    /// across worker counts by construction; timings are not).
    pub pool_workers: usize,
    /// Why this restore mode, with its inputs.
    pub decision: RestoreDecision,
    /// The resilient-finish ledger at capture time (normally drained;
    /// leftover pending counts point at tasks orphaned by the failure).
    pub ledger: Vec<LedgerEntry>,
    /// Per-place snapshot-store inventory (dead places report zeroes).
    pub store: Vec<PlaceInventory>,
    /// Redundancy audit of every committed object snapshot.
    pub snapshots: Vec<SnapshotAudit>,
    /// The last [`TRACE_TAIL_PER_PLACE`] trace events of each place, in
    /// global time order (empty when tracing is off).
    pub trace_tail: Vec<TraceEvent>,
    /// The last [`PATH_ROWS`] per-iteration critical-path profiles the
    /// tracer could still reconstruct at capture time (empty when tracing is
    /// off). Shows where the pre-failure iterations spent their time.
    pub path_rows: Vec<IterProfile>,
    /// Memory-ledger snapshot at capture time (all zeroes with the
    /// `mem-profile` feature off): per-tag levels plus the process-wide
    /// allocator counters. A restore is exactly when the memory map is
    /// interesting — surviving replicas inflate the store tag, rollback
    /// frees application matrices.
    pub mem: MemReport,
    /// Cumulative task replays at capture time — how often the task layer
    /// re-executed a panicked or timed-out body before this restore.
    pub task_replays: u64,
    /// Cumulative task-attempt timeouts at capture time.
    pub task_timeouts: u64,
    /// Cumulative replica digest-vote mismatches at capture time.
    pub task_vote_mismatches: u64,
}

impl PostMortem {
    /// Capture a bundle from the live runtime. `committed` is the set of
    /// object snapshots the application just restored from.
    pub fn capture(
        ctx: &Ctx,
        store: &ResilientStore,
        committed: &[Snapshot],
        decision: RestoreDecision,
        seq: u64,
    ) -> Self {
        let events = ctx.tracer().events();
        let mut path_rows = critical_path::analyze(&events, &ctx.tracer().dropped());
        if path_rows.len() > PATH_ROWS {
            path_rows.drain(..path_rows.len() - PATH_ROWS);
        }
        let rt_stats = ctx.stats();
        PostMortem {
            seq,
            captured_at_nanos: ctx.tracer().now_nanos(),
            pool_workers: apgas::pool::workers(),
            decision,
            ledger: ctx.finish_ledger(),
            store: store.inventory(ctx),
            snapshots: committed.iter().map(|s| store.audit_snapshot(ctx, s)).collect(),
            trace_tail: trace_tail(&events, TRACE_TAIL_PER_PLACE),
            path_rows,
            mem: apgas::mem::report(),
            task_replays: rt_stats.task_replays,
            task_timeouts: rt_stats.task_timeouts,
            task_vote_mismatches: rt_stats.task_vote_mismatches,
        }
    }

    /// Serialize the bundle as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"seq\":{},\"captured_at_nanos\":{},\"pool_workers\":{},\
             \"task_replays\":{},\"task_timeouts\":{},\"task_vote_mismatches\":{},\
             \"decision\":{{",
            self.seq,
            self.captured_at_nanos,
            self.pool_workers,
            self.task_replays,
            self.task_timeouts,
            self.task_vote_mismatches,
        ));
        let d = &self.decision;
        s.push_str(&format!(
            "\"configured_mode\":\"{}\",\"effective_label\":\"{}\",\"rebalance\":{},\
             \"reason\":\"{}\",\"dead_places\":{},\"live_spares\":{},\
             \"places_spawned\":{},\"rolled_back_to\":{},\"attempt\":{},\
             \"expected_digest\":{},\"observed_digest\":{}}}",
            esc(d.configured_mode),
            esc(d.effective_label),
            d.rebalance,
            esc(&d.reason),
            json_u32s(&d.dead_places),
            json_u32s(&d.live_spares),
            json_u32s(&d.places_spawned),
            d.rolled_back_to,
            d.attempt,
            json_digest(d.expected_digest),
            json_digest(d.observed_digest),
        ));
        s.push_str(",\"ledger\":[");
        for (i, e) in self.ledger.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let pending: Vec<String> =
                e.pending.iter().map(|(p, n)| format!("[{p},{n}]")).collect();
            s.push_str(&format!(
                "{{\"fid\":{},\"pending\":[{}],\"dead_exceptions\":{},\"panics\":{},\
                 \"has_waiter\":{}}}",
                e.fid,
                pending.join(","),
                e.dead_exceptions,
                e.panics,
                e.has_waiter,
            ));
        }
        s.push_str("],\"store\":[");
        for (i, p) in self.store.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"place\":{},\"alive\":{},\"entries\":{},\"snapshots\":{},\"bytes\":{},\
                 \"wire_bytes\":{}}}",
                p.place.id(),
                p.alive,
                p.entries,
                p.snapshots,
                p.bytes,
                p.wire_bytes,
            ));
        }
        s.push_str("],\"snapshots\":[");
        for (i, a) in self.snapshots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"snap_id\":{},\"object_id\":{},\"entries\":{},\"fully_redundant\":{},\
                 \"degraded\":{},\"lost\":{},\"placement_violations\":{},\"bytes\":{},\
                 \"invariant_ok\":{}}}",
                a.snap_id,
                a.object_id,
                a.entries,
                a.fully_redundant,
                a.degraded,
                a.lost,
                a.placement_violations,
                a.bytes,
                a.invariant_ok(),
            ));
        }
        s.push_str("],\"trace_tail\":[");
        for (i, e) in self.trace_tail.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let phase = match e.phase {
                Phase::Begin => "begin",
                Phase::End => "end",
                Phase::Instant => "instant",
            };
            s.push_str(&format!(
                "{{\"t_nanos\":{},\"dur_nanos\":{},\"place\":{},\"phase\":\"{phase}\",\
                 \"kind\":\"{}\",\"label\":\"{}\",\"arg\":{},\"span_id\":{},\
                 \"parent_id\":{}}}",
                e.t_nanos,
                e.dur_nanos,
                e.place,
                esc(e.kind.name()),
                esc(e.label),
                e.arg,
                e.span_id,
                e.parent_id,
            ));
        }
        s.push_str("],\"path_rows\":[");
        for (i, p) in self.path_rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"iteration\":{},\"wall_nanos\":{},\"critical_path_nanos\":{},\
                 \"compute_nanos\":{},\"ship_nanos\":{},\"ctl_nanos\":{},\"idle_nanos\":{},\
                 \"dominant_place\":{},\"straggler_ratio\":{:.4},\"complete\":{}}}",
                p.iteration,
                p.wall_nanos,
                p.critical_path_nanos,
                p.compute_nanos,
                p.ship_nanos,
                p.ctl_nanos,
                p.idle_nanos,
                p.dominant_place,
                p.straggler_ratio,
                p.complete,
            ));
        }
        s.push_str("],\"mem\":{");
        let m = &self.mem;
        s.push_str(&format!(
            "\"heap_bytes\":{},\"heap_peak_bytes\":{},\"heap_allocs\":{},\"tags\":[",
            m.heap_bytes, m.heap_peak_bytes, m.heap_allocs
        ));
        for (i, t) in m.tags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"tag\":\"{}\",\"current\":{},\"high_water\":{},\"charges\":{}}}",
                esc(t.tag.label()),
                t.current,
                t.high_water,
                t.charges,
            ));
        }
        s.push_str("]}}");
        s
    }

    /// Check that [`to_json`](Self::to_json) produced well-formed JSON
    /// (using the tracer's built-in validating parser).
    pub fn validate(&self) -> Result<(), String> {
        apgas::trace::validate_json(&self.to_json())
    }

    /// If `GML_FORENSICS_DIR` is set, write the bundle there as
    /// `postmortem-<n>.json` (`n` is a process-global ordinal, so bundles
    /// from consecutive runs never overwrite each other). Returns the path
    /// written; logs and returns `None` on failure instead of erroring — the
    /// flight recorder must never take down a recovery that just succeeded.
    pub fn maybe_write_env_dir(&self) -> Option<PathBuf> {
        let dir = std::env::var("GML_FORENSICS_DIR").ok()?;
        if dir.is_empty() {
            return None;
        }
        let json = self.to_json();
        if let Err(e) = apgas::trace::validate_json(&json) {
            eprintln!("gml: post-mortem bundle {} failed validation, not written: {e}", self.seq);
            return None;
        }
        static ORDINAL: AtomicU64 = AtomicU64::new(0);
        let n = ORDINAL.fetch_add(1, Ordering::Relaxed);
        let path = PathBuf::from(dir).join(format!("postmortem-{n}.json"));
        match std::fs::write(&path, json) {
            Ok(()) => {
                eprintln!("gml: post-mortem bundle written to {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("gml: failed to write post-mortem {}: {e}", path.display());
                None
            }
        }
    }
}

/// Keep only the last `per_place` events of each place, preserving the
/// input's (global time) order.
fn trace_tail(events: &[TraceEvent], per_place: usize) -> Vec<TraceEvent> {
    let mut skip: HashMap<u32, usize> = HashMap::new();
    for e in events {
        *skip.entry(e.place).or_default() += 1;
    }
    for n in skip.values_mut() {
        *n = n.saturating_sub(per_place);
    }
    events
        .iter()
        .filter(|e| {
            let n = skip.get_mut(&e.place).expect("counted above");
            if *n > 0 {
                *n -= 1;
                false
            } else {
                true
            }
        })
        .copied()
        .collect()
}

/// Render an optional digest as a JSON value: a fixed-width hex string (so
/// the full 64 bits survive consumers that parse numbers as doubles) or
/// `null` when the restore had no digest evidence (fail-stop).
fn json_digest(d: Option<u64>) -> String {
    match d {
        Some(v) => format!("\"{v:016x}\""),
        None => "null".into(),
    }
}

fn json_u32s(v: &[u32]) -> String {
    let items: Vec<String> = v.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgas::trace::SpanKind;

    fn decision() -> RestoreDecision {
        RestoreDecision {
            configured_mode: "replace_redundant",
            effective_label: "shrink",
            rebalance: false,
            reason: "spares exhausted: 1 dead, 0 live spares \"left\"".into(),
            dead_places: vec![2],
            live_spares: vec![],
            places_spawned: vec![],
            rolled_back_to: 10,
            attempt: 1,
            expected_digest: None,
            observed_digest: None,
        }
    }

    fn event(t: u64, place: u32) -> TraceEvent {
        TraceEvent {
            t_nanos: t,
            dur_nanos: 0,
            place,
            phase: Phase::Instant,
            kind: SpanKind::Step,
            label: "",
            arg: t,
            span_id: t + 1,
            parent_id: 0,
        }
    }

    #[test]
    fn empty_bundle_is_valid_json() {
        let pm = PostMortem {
            seq: 1,
            captured_at_nanos: 42,
            pool_workers: 1,
            decision: decision(),
            ledger: vec![],
            store: vec![],
            snapshots: vec![],
            trace_tail: vec![],
            path_rows: vec![],
            mem: MemReport::default(),
            task_replays: 0,
            task_timeouts: 0,
            task_vote_mismatches: 0,
        };
        pm.validate().unwrap();
        let json = pm.to_json();
        assert!(json.contains("\"configured_mode\":\"replace_redundant\""));
        assert!(json.contains("\"effective_label\":\"shrink\""));
        assert!(json.contains("\\\"left\\\""), "quotes in the reason are escaped");
        assert!(json.contains("\"mem\":{"), "bundle carries a memory map");
        assert!(json.contains("\"tag\":\"store_shard\""), "every ledger tag is listed");
        assert!(json.contains("\"expected_digest\":null"), "fail-stop restore: no digests");
        assert!(json.contains("\"task_replays\":0"), "task-layer counters present");
    }

    #[test]
    fn populated_bundle_is_valid_json() {
        let mut dec = decision();
        dec.effective_label = "silent_error";
        dec.expected_digest = Some(0x1234_5678_9abc_def0);
        dec.observed_digest = Some(0x0fed_cba9_8765_4321);
        let pm = PostMortem {
            seq: 3,
            captured_at_nanos: 99,
            pool_workers: 4,
            decision: dec,
            ledger: vec![LedgerEntry {
                fid: 7,
                pending: vec![(0, 1), (2, 3)],
                dead_exceptions: 1,
                panics: 0,
                has_waiter: true,
            }],
            store: vec![PlaceInventory {
                place: Place::new(0),
                alive: true,
                entries: 4,
                snapshots: 2,
                bytes: 256,
                wire_bytes: 256,
            }],
            snapshots: vec![SnapshotAudit {
                snap_id: 5,
                object_id: 11,
                entries: 4,
                fully_redundant: 2,
                degraded: 1,
                lost: 1,
                placement_violations: 0,
                bytes: 256,
            }],
            trace_tail: vec![event(1, 0), event(2, 1)],
            path_rows: vec![IterProfile {
                iteration: 9,
                wall_nanos: 100,
                critical_path_nanos: 80,
                compute_nanos: 60,
                ship_nanos: 15,
                ctl_nanos: 5,
                idle_nanos: 20,
                dominant_place: 1,
                straggler_ratio: 1.25,
                complete: true,
            }],
            mem: apgas::mem::report(),
            task_replays: 5,
            task_timeouts: 2,
            task_vote_mismatches: 1,
        };
        pm.validate().unwrap();
        let json = pm.to_json();
        assert!(json.contains("\"pending\":[[0,1],[2,3]]"));
        assert!(json.contains("\"effective_label\":\"silent_error\""));
        assert!(json.contains("\"expected_digest\":\"123456789abcdef0\""));
        assert!(json.contains("\"observed_digest\":\"0fedcba987654321\""));
        assert!(json.contains("\"task_replays\":5"));
        assert!(json.contains("\"task_timeouts\":2"));
        assert!(json.contains("\"task_vote_mismatches\":1"));
        assert!(json.contains("\"invariant_ok\":false"));
        assert!(json.contains("\"kind\":\"exec.step\""));
        assert!(json.contains("\"phase\":\"instant\""));
        assert!(json.contains("\"span_id\":2"), "trace tail carries span identity");
        assert!(json.contains("\"iteration\":9"));
        assert!(json.contains("\"straggler_ratio\":1.2500"));
    }

    #[test]
    fn trace_tail_keeps_last_n_per_place_in_order() {
        // 100 events at place 0 interleaved with 3 at place 1.
        let mut events = Vec::new();
        for t in 0..100 {
            events.push(event(t, 0));
        }
        events.push(event(40, 1));
        events.push(event(60, 1));
        events.push(event(80, 1));
        events.sort_by_key(|e| e.t_nanos);
        let tail = trace_tail(&events, 64);
        assert_eq!(tail.iter().filter(|e| e.place == 0).count(), 64);
        assert_eq!(tail.iter().filter(|e| e.place == 1).count(), 3, "under the cap: all kept");
        // Place 0 keeps its *latest* 64 (args 36..100), and order is preserved.
        assert!(tail.iter().filter(|e| e.place == 0).all(|e| e.arg >= 36));
        assert!(tail.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
    }

    #[test]
    fn esc_handles_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
