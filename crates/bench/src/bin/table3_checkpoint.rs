//! Table III: time per checkpoint for the resilient GML applications.
fn main() {
    gml_bench::figures::checkpoint_table();
}
