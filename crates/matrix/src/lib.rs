#![warn(missing_docs)]
//! # gml-matrix — single-place matrix and vector kernels
//!
//! The local building blocks of the Global Matrix Library: the single-place
//! column of Table I in the paper (`Vector`, `DenseMatrix`, `SparseCSR`,
//! `SparseCSC`), plus the machinery the distributed layer is built from:
//!
//! * [`Grid`](grid::Grid) — an m×n block partitioning with near-even splits
//!   (`x10.matrix.block.Grid`), including the *overlap computation* between
//!   two different grids that powers the paper's repartitioned restore
//!   (Fig 1-c);
//! * [`MatrixBlock`](block::MatrixBlock) / [`BlockSet`](block::BlockSet) —
//!   dense-or-sparse blocks tagged with their grid position
//!   (`x10.matrix.distblock.BlockSet`);
//! * deterministic random builders for benchmark workloads.
//!
//! Kernels are single-threaded: in the paper each place runs one worker
//! thread (`X10_NTHREADS=1`, `OPENBLAS_NUM_THREADS=1`); parallelism comes
//! from running many places.

pub mod block;
pub mod builder;
pub mod dense;
pub mod grid;
pub mod sparse_csc;
pub mod sparse_csr;
pub mod vector;

pub use block::{BlockData, BlockSet, MatrixBlock};
pub use dense::DenseMatrix;
pub use grid::{Grid, Overlap};
pub use sparse_csc::SparseCSC;
pub use sparse_csr::SparseCSR;
pub use vector::Vector;
