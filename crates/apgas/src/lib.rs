#![warn(missing_docs)]
//! # apgas — a simulated APGAS (X10-style) runtime
//!
//! This crate reproduces the execution model the paper's Global Matrix
//! Library runs on: an Asynchronous Partitioned Global Address Space with
//! *places* (here: one mailbox-dispatched thread pool per place), `async` /
//! `finish` task structuring, synchronous remote execution (`at`),
//! place-local storage ([`PlaceLocalHandle`]), and — crucially for the paper —
//! **Resilient X10 semantics**:
//!
//! * fail-stop *place failure* can be injected at any time
//!   ([`Ctx::kill_place`]); a dead place loses all its place-local data, its
//!   mailbox drops queued tasks and rejects new ones;
//! * in resilient mode, every task spawn and termination is recorded through
//!   **place-zero bookkeeping messages** (the design of Cunningham et al.,
//!   PPoPP'14, which the paper identifies as the dominant source of resilient
//!   overhead); the enclosing [`finish`](Ctx::finish) then reports failures as
//!   [`DeadPlaceException`]s instead of hanging;
//! * place zero is immortal, mirroring the paper's stated assumption.
//!
//! Cross-place payloads in the layers above this crate are moved as
//! serialized byte buffers (see [`serial`]), so data movement has a real,
//! data-proportional cost even though places share one address space.
//!
//! ```
//! use apgas::prelude::*;
//!
//! let cfg = RuntimeConfig::new(4).resilient(true);
//! let sum = Runtime::run(cfg, |ctx| {
//!     let world = ctx.world();
//!     let total = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
//!     ctx.finish(|fs| {
//!         for p in world.iter() {
//!             let total = total.clone();
//!             fs.async_at(p, move |ctx| {
//!                 total.fetch_add(ctx.here().id() as u64 + 1,
//!                                 std::sync::atomic::Ordering::Relaxed);
//!             });
//!         }
//!     }).unwrap();
//!     total.load(std::sync::atomic::Ordering::Relaxed)
//! }).unwrap();
//! assert_eq!(sum, 1 + 2 + 3 + 4);
//! ```

pub mod digest;
pub mod error;
pub mod mem;
pub mod metrics;
pub mod monitor;
pub mod place;
pub mod pool;
pub mod serial;
mod thread_cache;
pub mod finish;
pub mod plh;
pub mod runtime;
pub mod stats;
pub mod trace;

pub use digest::{fnv1a_bytes, fnv1a_f64s, Fnv1a};
pub use error::{ApgasError, DeadPlaceException, Result};
pub use finish::{FinishScope, LedgerEntry, TaskPolicy};
pub use mem::{MemReport, MemScope, MemTag};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry};
pub use monitor::watchdog::{Watchdog, WatchdogReport};
pub use monitor::{HealthBoard, HealthSnapshot, MonitorServer, PlaceHealth};
pub use place::{Place, PlaceGroup};
pub use plh::PlaceLocalHandle;
pub use runtime::{Ctx, Runtime, RuntimeConfig};
pub use serial::Serial;
pub use stats::RuntimeStats;
pub use trace::critical_path::{CostClass, IterProfile, SpanDag};
pub use trace::{SpanGuard, SpanKind, TraceCtx, TraceEvent, Tracer};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::digest::{fnv1a_bytes, fnv1a_f64s, Fnv1a};
    pub use crate::error::{ApgasError, DeadPlaceException, Result as ApgasResult};
    pub use crate::finish::{FinishScope, LedgerEntry, TaskPolicy};
    pub use crate::mem::{self, MemReport, MemScope, MemTag};
    pub use crate::metrics::{Histogram, HistogramSnapshot, MetricsRegistry};
    pub use crate::monitor::watchdog::{Watchdog, WatchdogReport};
    pub use crate::monitor::{HealthSnapshot, MonitorServer};
    pub use crate::place::{Place, PlaceGroup};
    pub use crate::plh::PlaceLocalHandle;
    pub use crate::pool;
    pub use crate::runtime::{Ctx, Runtime, RuntimeConfig};
    pub use crate::serial::Serial;
    pub use crate::trace::critical_path::IterProfile;
    pub use crate::trace::{SpanGuard, SpanKind, TraceCtx, TraceEvent, Tracer};
}
