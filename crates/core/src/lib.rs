#![warn(missing_docs)]
//! # gml-core — the resilient Global Matrix Library
//!
//! This crate is the paper's contribution: multi-place matrix/vector classes
//! that (a) can be constructed over an **arbitrary place group** and *remade*
//! over a different group when places fail (§IV-A), (b) can save and restore
//! their state through a **double in-memory snapshot store** (§IV-B), and
//! (c) plug into a **coordinated checkpoint/restart framework for iterative
//! applications** with three restoration modes (§V).
//!
//! Layout mirrors Table I of the paper:
//!
//! | | Duplicated | Distributed |
//! |---|---|---|
//! | Vector | [`DupVector`] | [`DistVector`] |
//! | Matrix | [`DupDenseMatrix`] | [`DistBlockMatrix`], [`DistDenseMatrix`], [`DistSparseMatrix`] |
//!
//! plus the resilience machinery: [`Snapshottable`], [`ResilientStore`],
//! [`AppResilientStore`], [`ResilientExecutor`] and [`RestoreMode`].

pub mod app_store;
pub mod codec;
pub mod dist_block_matrix;
pub mod dist_dense;
pub mod dist_sparse;
pub mod dist_vector;
pub mod dup_dense;
pub mod dup_vector;
pub mod error;
pub mod forensics;
pub mod framework;
pub mod report;
pub mod snapshot;
pub mod store;

pub use app_store::AppResilientStore;
pub use codec::{CodecConfig, CodecMode, CodecSnapshot, PayloadClass};
pub use dist_block_matrix::{DistBlockHandle, DistBlockMatrix, DupOperand};
pub use dist_dense::DistDenseMatrix;
pub use dist_sparse::DistSparseMatrix;
pub use dist_vector::DistVector;
pub use dup_dense::{DupDenseHandle, DupDenseMatrix};
pub use dup_vector::DupVector;
pub use error::{GmlError, GmlResult};
pub use forensics::{PostMortem, RestoreDecision};
pub use framework::{
    young_interval, ChaosInjector, ChecksummedStep, ExecutorConfig, FailureInjector,
    ResilientExecutor, ResilientIterativeApp, RestoreMode, RunStats,
};
pub use report::{fmt_bytes, CostReport, IterRow, RestoreCost};
pub use snapshot::{Snapshot, Snapshottable};
pub use store::{render_inventory, PlaceInventory, ResilientStore, SnapshotAudit};

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

/// A process-unique id for a GML object; snapshots are keyed by it.
pub(crate) fn fresh_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}
