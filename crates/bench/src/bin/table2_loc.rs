//! Table II: lines-of-code comparison between the non-resilient and
//! resilient versions of the benchmark programs.
fn main() {
    gml_bench::figures::loc_table();
}
