//! End-to-end observability contract: a traced resilient run with an
//! injected kill must leave behind (a) a per-iteration cost report whose
//! rows account for every counter tick, (b) matched `exec.restore`
//! begin/end spans labeled with the restore mode that actually ran, and
//! (c) a non-empty Chrome trace JSON export that parses.

use apgas::runtime::{Runtime, RuntimeConfig};
use apgas::trace::critical_path::{self, SpanDag};
use apgas::trace::{count_flow_events, validate_chrome_trace, Phase};
use proptest::prelude::*;
use resilient_gml::prelude::*;

/// Minimal executor app over a `DistBlockMatrix`: each step scales the
/// matrix and reduces its Frobenius norm (a collective, so dead places
/// surface as recoverable errors). Kills `victim` at iteration `kill_at`.
struct Drill {
    m: DistBlockMatrix,
    iters: u64,
    kill_at: Option<u64>,
    victim: Place,
    fired: bool,
}

impl Drill {
    fn make(ctx: &Ctx, group: &PlaceGroup, iters: u64, kill_at: Option<u64>) -> Self {
        let m = DistBlockMatrix::make(ctx, 200, 80, group.len(), 1, group.len(), 1, group, false)
            .unwrap();
        m.init_with(ctx, |_, _, r0, c0, rows, cols| {
            BlockData::Dense(builder::random_dense(rows, cols, (r0 * 13 + c0 + 1) as u64))
        })
        .unwrap();
        Drill { m, iters, kill_at, victim: Place::new(2), fired: false }
    }
}

impl ResilientIterativeApp for Drill {
    fn is_finished(&self, _ctx: &Ctx, iteration: u64) -> bool {
        iteration >= self.iters
    }
    fn step(&mut self, ctx: &Ctx, iteration: u64) -> GmlResult<()> {
        if self.kill_at == Some(iteration) && !self.fired {
            self.fired = true;
            ctx.kill_place(self.victim)?;
        }
        self.m.scale(ctx, 0.5)?;
        self.m.frobenius_norm_sq(ctx)?;
        Ok(())
    }
    fn checkpoint(&mut self, ctx: &Ctx, store: &mut AppResilientStore) -> GmlResult<()> {
        store.start_new_snapshot();
        store.save(ctx, &self.m)?;
        store.commit(ctx)
    }
    fn restore(
        &mut self,
        ctx: &Ctx,
        new_places: &PlaceGroup,
        store: &mut AppResilientStore,
        _snapshot_iteration: u64,
        rebalance: bool,
    ) -> GmlResult<()> {
        self.m.remake(ctx, new_places, rebalance)?;
        store.restore(ctx, &mut [&mut self.m])
    }
}

fn run_drill(
    mode: RestoreMode,
    kill_at: Option<u64>,
) -> (Runtime, RunStats, CostReport) {
    let rt = Runtime::new(RuntimeConfig::new(4).resilient(true).trace(true));
    let (stats, report) = rt
        .exec(move |ctx| {
            let group = ctx.world();
            let mut app = Drill::make(ctx, &group, 6, kill_at);
            let mut store = AppResilientStore::make(ctx).unwrap();
            let exec = ResilientExecutor::new(ExecutorConfig::new(2, mode));
            let (_, stats, report) =
                exec.run_reported(ctx, &mut app, &group, &mut store).unwrap();
            (stats, report)
        })
        .unwrap();
    (rt, stats, report)
}

#[test]
fn kill_and_restore_emits_matched_mode_labeled_spans() {
    let (rt, stats, report) = run_drill(RestoreMode::ShrinkRebalance, Some(3));
    assert_eq!(stats.restores, 1);

    // The report row for the failing pass carries the effective mode label.
    let restore_rows: Vec<_> = report.rows.iter().filter_map(|r| r.restore).collect();
    assert_eq!(restore_rows.len(), 1);
    assert_eq!(restore_rows[0].label, "shrink_rebalance");
    assert!(restore_rows[0].rebalance);
    assert!(restore_rows[0].time.as_nanos() > 0);

    // The trace holds a matched begin/end pair for exec.restore, labeled
    // with the mode that actually ran.
    let events = rt.tracer().events();
    let begins: Vec<_> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Restore && e.phase == Phase::Begin)
        .collect();
    let ends: Vec<_> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Restore && e.phase == Phase::End)
        .collect();
    assert_eq!(begins.len(), 1, "one restore.begin");
    assert_eq!(ends.len(), 1, "one restore.end");
    assert_eq!(begins[0].label, "shrink_rebalance");
    assert_eq!(ends[0].label, "shrink_rebalance");
    assert!(ends[0].dur_nanos > 0);
    assert!(begins[0].t_nanos <= ends[0].t_nanos);
    // Both sides carry the rolled-back-to iteration as their argument.
    assert_eq!(begins[0].arg, restore_rows[0].rolled_back_to);
    assert_eq!(ends[0].arg, restore_rows[0].rolled_back_to);

    // The kill itself is visible as an instant.
    assert!(events.iter().any(|e| e.kind == SpanKind::KillPlace && e.phase == Phase::Instant));
    rt.shutdown();
}

#[test]
fn cost_report_columns_are_nonzero_and_telescope_to_totals() {
    let (rt, stats, report) = run_drill(RestoreMode::Shrink, Some(3));
    assert!(report.consistent_with_totals(), "rows must sum to exactly the totals");
    assert_eq!(report.restores(), stats.restores);
    assert!(report.rows.iter().any(|r| r.checkpoint.is_some()));
    assert!(report.rows.iter().all(|r| r.delta.ctl_total() > 0));
    let t = &report.totals;
    assert!(t.bytes_shipped > 0);
    assert!(t.bytes_received > 0);
    assert!(t.encode_nanos + t.decode_nanos > 0);
    // In-flight payloads to the dead place count as shipped, never received.
    assert!(t.bytes_received <= t.bytes_shipped);
    // The executor phases all left their marks in the latency registry.
    let m = rt.tracer().metrics();
    assert!(m.kind(SpanKind::Step).snapshot().count >= stats.iterations_run);
    assert_eq!(m.kind(SpanKind::Checkpoint).snapshot().count, stats.checkpoints);
    assert_eq!(m.kind(SpanKind::Restore).snapshot().count, stats.restores);
    rt.shutdown();
}

#[test]
fn failure_free_run_receives_exactly_what_it_ships() {
    let (rt, stats, report) = run_drill(RestoreMode::Shrink, None);
    assert_eq!(stats.restores, 0);
    assert!(report.consistent_with_totals());
    assert!(report.totals.bytes_shipped > 0);
    assert_eq!(
        report.totals.bytes_received, report.totals.bytes_shipped,
        "every shipped byte lands exactly once when no place dies"
    );
    rt.shutdown();
}

#[test]
fn chrome_trace_export_is_valid_nonempty_json() {
    let (rt, _, _) = run_drill(RestoreMode::ShrinkRebalance, Some(3));
    let json = rt.tracer().chrome_json();
    let n = validate_chrome_trace(&json).expect("export must be valid JSON");
    assert!(n > 0, "export must contain events");
    rt.shutdown();
}

/// Causal-linking drill: a nested `async_at` fan-out across 4 places must
/// leave every receiver task span holding a `parent_id` that resolves to the
/// *sender's* dispatch instant at a different place, and the reconstructed
/// span DAG must be acyclic and complete (no dangling parents).
#[test]
fn async_at_fanout_receiver_spans_link_back_to_senders() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let rt = Runtime::new(RuntimeConfig::new(4).resilient(true).trace(true));
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = Arc::clone(&hits);
    rt.exec(move |ctx| {
        ctx.finish(|fs| {
            let h = fs.handle();
            for i in 1..4u32 {
                let h = h.clone();
                let hits = Arc::clone(&hits2);
                // First hop: 0 -> i. Second hop, nested: i -> (i + 1) % 4.
                fs.async_at(Place::new(i), move |cx| {
                    let inner = Arc::clone(&hits);
                    h.async_at(cx, Place::new((i + 1) % 4), move |_| {
                        inner.fetch_add(1, Ordering::Relaxed);
                    });
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
    })
    .unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 6, "all 6 tasks ran");

    let events = rt.tracer().events();
    let tasks: Vec<_> = events
        .iter()
        .filter(|e| e.kind == SpanKind::AsyncTask && e.phase == Phase::End)
        .collect();
    assert_eq!(tasks.len(), 6, "one task span per spawn");
    for t in &tasks {
        assert_ne!(t.parent_id, 0, "receiver span must carry a causal parent");
        let sender = events
            .iter()
            .find(|e| e.span_id == t.parent_id)
            .unwrap_or_else(|| panic!("parent {} of task span {} not in trace", t.parent_id, t.span_id));
        assert_eq!(sender.kind, SpanKind::AsyncAt, "parent is the dispatch instant");
        assert_ne!(sender.place, t.place, "the link crosses places");
        assert_eq!(sender.arg, t.place as u64, "dispatch targeted the place the task ran at");
    }

    // The reconstructed DAG is sound: every parent resolves, no cycles.
    let dag = SpanDag::build(&events);
    assert!(dag.is_complete(), "every parent_id resolves to a traced span");
    assert!(dag.is_acyclic());
    assert!(dag.max_depth() >= 2, "nested spawn produces a chain of at least two hops");

    // The Chrome export draws a flow arrow for each cross-place link.
    let json = rt.tracer().chrome_json();
    validate_chrome_trace(&json).unwrap();
    assert!(
        count_flow_events(&json) >= 6,
        "at least one flow arrow per cross-place task link"
    );
    rt.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Telescoping invariant of the critical-path analyzer over synthetic
    /// iteration windows: path ≤ wall, path ≥ max single-place compute, and
    /// the breakdown never exceeds the path it decomposes.
    #[test]
    fn critical_path_telescopes_between_compute_floor_and_wall(
        wall in 1_000u64..1_000_000,
        spans in prop::collection::vec(
            // (place, start permille of wall, duration permille, kind selector)
            (0u32..4, 0u64..1000, 1u64..1000, 0u8..3),
            1..24,
        ),
    ) {
        let mut events = Vec::new();
        let mut next_id = 1u64;
        for &(place, start_pm, dur_pm, kind_sel) in &spans {
            let start = start_pm * wall / 1000; // < wall since start_pm < 1000
            let dur = (dur_pm * wall / 1000).clamp(1, wall - start);
            let kind = match kind_sel {
                0 => SpanKind::AtRemote,  // compute
                1 => SpanKind::Encode,    // ship
                _ => SpanKind::CtlSpawn,  // ctl
            };
            events.push(TraceEvent {
                t_nanos: start + dur,
                dur_nanos: dur,
                place,
                phase: Phase::End,
                kind,
                label: "",
                arg: 0,
                span_id: next_id,
                parent_id: 0,
            });
            next_id += 1;
        }
        // The iteration window: one exec.step span covering [0, wall].
        events.push(TraceEvent {
            t_nanos: wall,
            dur_nanos: wall,
            place: 0,
            phase: Phase::End,
            kind: SpanKind::Step,
            label: "",
            arg: 7,
            span_id: next_id,
            parent_id: 0,
        });

        let profiles = critical_path::analyze(&events, &[0, 0, 0, 0]);
        prop_assert_eq!(profiles.len(), 1);
        let p = profiles[0];
        prop_assert_eq!(p.iteration, 7);
        prop_assert!(p.complete);
        prop_assert!(p.critical_path_nanos <= p.wall_nanos);
        let floor = critical_path::max_place_compute(&events, 0, wall);
        prop_assert!(
            p.critical_path_nanos >= floor,
            "path {} must cover the busiest place's compute {}",
            p.critical_path_nanos, floor
        );
        prop_assert!(p.compute_nanos + p.ship_nanos + p.ctl_nanos <= p.critical_path_nanos);
        prop_assert_eq!(p.idle_nanos, p.wall_nanos - p.critical_path_nanos);
        prop_assert!(p.straggler_ratio >= 1.0);
    }
}

#[test]
fn untraced_run_keeps_report_but_records_no_events() {
    let rt = Runtime::new(RuntimeConfig::new(3).resilient(true).trace(false));
    let report = rt
        .exec(|ctx| {
            let group = ctx.world();
            let mut app = Drill::make(ctx, &group, 4, None);
            let mut store = AppResilientStore::make(ctx).unwrap();
            let exec = ResilientExecutor::new(ExecutorConfig::new(2, RestoreMode::Shrink));
            let (_, _, report) =
                exec.run_reported(ctx, &mut app, &group, &mut store).unwrap();
            report
        })
        .unwrap();
    assert!(!rt.tracer().is_on());
    assert!(rt.tracer().events().is_empty());
    // The cost report does not depend on tracing: counters still flow.
    assert!(report.consistent_with_totals());
    assert!(report.totals.bytes_shipped > 0);
    rt.shutdown();
}
