//! Matrix blocks and per-place block sets
//! (`x10.matrix.distblock.BlockSet`).
//!
//! A [`MatrixBlock`] is one tile of a distributed matrix: its grid position
//! plus a dense or sparse payload. A [`BlockSet`] is the collection of
//! blocks one place holds. Allowing a place to hold *several* blocks is the
//! key enabler of the paper's shrink-mode restore: after a failure the same
//! blocks are re-mapped onto fewer places without repartitioning (§III-A,
//! Fig 1-b).

use apgas::serial::Serial;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dense::DenseMatrix;
use crate::grid::Grid;
use crate::sparse_csr::SparseCSR;

/// The payload of one block: dense or sparse.
#[derive(Clone, Debug, PartialEq)]
pub enum BlockData {
    /// Dense payload.
    Dense(DenseMatrix),
    /// Sparse (CSR) payload.
    Sparse(SparseCSR),
}

impl BlockData {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            BlockData::Dense(d) => d.rows(),
            BlockData::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            BlockData::Dense(d) => d.cols(),
            BlockData::Sparse(s) => s.cols(),
        }
    }

    /// An all-zero payload of the same kind and given dims.
    pub fn zeros_like(&self, rows: usize, cols: usize) -> BlockData {
        match self {
            BlockData::Dense(_) => BlockData::Dense(DenseMatrix::zeros(rows, cols)),
            BlockData::Sparse(_) => BlockData::Sparse(SparseCSR::zeros(rows, cols)),
        }
    }

    /// Extract a sub-region in **local** block coordinates. For sparse
    /// payloads this runs the nnz-counting pre-pass the paper describes.
    pub fn sub_region(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> BlockData {
        match self {
            BlockData::Dense(d) => BlockData::Dense(d.sub_matrix(r0, r1, c0, c1)),
            BlockData::Sparse(s) => BlockData::Sparse(s.sub_matrix(r0, r1, c0, c1)),
        }
    }

    /// Paste `src` at local position `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if kinds differ or the region does not fit.
    pub fn paste(&mut self, r0: usize, c0: usize, src: &BlockData) {
        match (self, src) {
            (BlockData::Dense(d), BlockData::Dense(s)) => d.paste(r0, c0, s),
            (BlockData::Sparse(d), BlockData::Sparse(s)) => d.paste(r0, c0, s),
            _ => panic!("cannot paste between dense and sparse payloads"),
        }
    }

    /// `y = alpha * B * x + beta * y` for this block.
    pub fn gemv(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        match self {
            BlockData::Dense(d) => d.gemv(alpha, x, beta, y),
            BlockData::Sparse(s) => s.spmv(alpha, x, beta, y),
        }
    }

    /// `y = alpha * Bᵀ * x + beta * y` for this block.
    pub fn gemv_trans(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        match self {
            BlockData::Dense(d) => d.gemv_trans(alpha, x, beta, y),
            BlockData::Sparse(s) => s.spmv_trans(alpha, x, beta, y),
        }
    }

    /// Densify (testing aid).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            BlockData::Dense(d) => d.clone(),
            BlockData::Sparse(s) => s.to_dense(),
        }
    }

    /// Bytes of payload if serialized (used for checkpoint sizing).
    pub fn payload_bytes(&self) -> usize {
        self.byte_len()
    }
}

impl Serial for BlockData {
    fn write(&self, buf: &mut BytesMut) {
        match self {
            BlockData::Dense(d) => {
                buf.put_u8(0);
                d.write(buf);
            }
            BlockData::Sparse(s) => {
                buf.put_u8(1);
                s.write(buf);
            }
        }
    }
    fn read(buf: &mut Bytes) -> Self {
        match buf.get_u8() {
            0 => BlockData::Dense(DenseMatrix::read(buf)),
            _ => BlockData::Sparse(SparseCSR::read(buf)),
        }
    }
    fn byte_len(&self) -> usize {
        1 + match self {
            BlockData::Dense(d) => d.byte_len(),
            BlockData::Sparse(s) => s.byte_len(),
        }
    }
}

/// One tile of a distributed matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixBlock {
    /// Block-row index in the owning grid.
    pub bi: usize,
    /// Block-col index in the owning grid.
    pub bj: usize,
    /// Global row of this block's (0,0) element.
    pub row_offset: usize,
    /// Global column of this block's (0,0) element.
    pub col_offset: usize,
    /// The tile contents.
    pub data: BlockData,
}

impl MatrixBlock {
    /// An all-zero block at position `(bi, bj)` of `grid`; `sparse` selects
    /// the payload kind.
    pub fn zeros(grid: &Grid, bi: usize, bj: usize, sparse: bool) -> Self {
        let (r0, _r1, c0, _c1) = grid.block_range(bi, bj);
        let (m, n) = grid.block_dims(bi, bj);
        let data = if sparse {
            BlockData::Sparse(SparseCSR::zeros(m, n))
        } else {
            BlockData::Dense(DenseMatrix::zeros(m, n))
        };
        MatrixBlock { bi, bj, row_offset: r0, col_offset: c0, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.data.cols()
    }

    /// Global extents `(r0, r1, c0, c1)`.
    pub fn global_range(&self) -> (usize, usize, usize, usize) {
        (
            self.row_offset,
            self.row_offset + self.rows(),
            self.col_offset,
            self.col_offset + self.cols(),
        )
    }

    /// Extract a **globally**-addressed sub-region of this block.
    pub fn sub_region_global(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> BlockData {
        self.data.sub_region(
            r0 - self.row_offset,
            r1 - self.row_offset,
            c0 - self.col_offset,
            c1 - self.col_offset,
        )
    }
}

impl Serial for MatrixBlock {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.bi as u64);
        buf.put_u64_le(self.bj as u64);
        buf.put_u64_le(self.row_offset as u64);
        buf.put_u64_le(self.col_offset as u64);
        self.data.write(buf);
    }
    fn read(buf: &mut Bytes) -> Self {
        let bi = buf.get_u64_le() as usize;
        let bj = buf.get_u64_le() as usize;
        let row_offset = buf.get_u64_le() as usize;
        let col_offset = buf.get_u64_le() as usize;
        MatrixBlock { bi, bj, row_offset, col_offset, data: BlockData::read(buf) }
    }
    fn byte_len(&self) -> usize {
        32 + self.data.byte_len()
    }
}

/// The blocks one place holds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockSet {
    blocks: Vec<MatrixBlock>,
}

impl BlockSet {
    /// Create a new instance.
    pub fn new() -> Self {
        BlockSet { blocks: Vec::new() }
    }

    /// Build from an explicit list of blocks.
    pub fn from_blocks(blocks: Vec<MatrixBlock>) -> Self {
        BlockSet { blocks }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Add a block to the set.
    pub fn push(&mut self, b: MatrixBlock) {
        self.blocks.push(b);
    }

    /// Iterate over the blocks.
    pub fn iter(&self) -> impl Iterator<Item = &MatrixBlock> {
        self.blocks.iter()
    }

    /// Iterate mutably over the blocks.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MatrixBlock> {
        self.blocks.iter_mut()
    }

    /// Find the block at grid position `(bi, bj)`.
    pub fn find(&self, bi: usize, bj: usize) -> Option<&MatrixBlock> {
        self.blocks.iter().find(|b| b.bi == bi && b.bj == bj)
    }

    /// Find the block at grid position `(bi, bj)`, mutably.
    pub fn find_mut(&mut self, bi: usize, bj: usize) -> Option<&mut MatrixBlock> {
        self.blocks.iter_mut().find(|b| b.bi == bi && b.bj == bj)
    }

    /// Total payload bytes across all blocks (checkpoint sizing).
    pub fn payload_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.data.payload_bytes()).sum()
    }

    /// Total element count across all blocks (load-balance metric).
    pub fn element_count(&self) -> usize {
        self.blocks.iter().map(|b| b.rows() * b.cols()).sum()
    }

    /// Remove all blocks.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_block(grid: &Grid, bi: usize, bj: usize) -> MatrixBlock {
        let mut b = MatrixBlock::zeros(grid, bi, bj, false);
        let (r0, r1, c0, c1) = b.global_range();
        if let BlockData::Dense(d) = &mut b.data {
            for (li, r) in (r0..r1).enumerate() {
                for (lj, c) in (c0..c1).enumerate() {
                    d.set(li, lj, (r * 100 + c) as f64);
                }
            }
        }
        b
    }

    #[test]
    fn zeros_matches_grid_geometry() {
        let g = Grid::partition(10, 7, 3, 2);
        let b = MatrixBlock::zeros(&g, 2, 1, false);
        assert_eq!(b.global_range(), (7, 10, 4, 7));
        assert_eq!((b.rows(), b.cols()), (3, 3));
        let s = MatrixBlock::zeros(&g, 0, 0, true);
        assert!(matches!(s.data, BlockData::Sparse(_)));
    }

    #[test]
    fn global_sub_region_translates_coordinates() {
        let g = Grid::partition(10, 10, 2, 2);
        let b = dense_block(&g, 1, 1); // covers rows 5..10, cols 5..10
        let r = b.sub_region_global(6, 8, 7, 9).to_dense();
        assert_eq!(r.get(0, 0), 607.0);
        assert_eq!(r.get(1, 1), 708.0);
    }

    #[test]
    fn block_serialization_round_trip() {
        let g = Grid::partition(6, 6, 2, 2);
        let b = dense_block(&g, 0, 1);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.byte_len());
        assert_eq!(MatrixBlock::from_bytes(bytes), b);

        let s = MatrixBlock::zeros(&g, 1, 0, true);
        assert_eq!(MatrixBlock::from_bytes(s.to_bytes()), s);
    }

    #[test]
    fn block_set_find_and_metrics() {
        let g = Grid::partition(8, 8, 2, 2);
        let mut set = BlockSet::new();
        set.push(dense_block(&g, 0, 0));
        set.push(dense_block(&g, 1, 1));
        assert_eq!(set.len(), 2);
        assert!(set.find(0, 0).is_some());
        assert!(set.find(0, 1).is_none());
        assert_eq!(set.element_count(), 32);
        assert!(set.payload_bytes() > 32 * 8);
        set.find_mut(1, 1).expect("present").data =
            BlockData::Dense(DenseMatrix::zeros(4, 4));
        assert_eq!(set.find(1, 1).expect("present").data.to_dense(), DenseMatrix::zeros(4, 4));
    }

    #[test]
    fn paste_kind_mismatch_panics() {
        let mut d = BlockData::Dense(DenseMatrix::zeros(2, 2));
        let s = BlockData::Sparse(SparseCSR::zeros(1, 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.paste(0, 0, &s);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn gemv_dispatches_by_kind() {
        let dense = BlockData::Dense(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let sparse = BlockData::Sparse(SparseCSR::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)],
        ));
        let x = [1.0, 1.0];
        let mut y1 = [0.0; 2];
        let mut y2 = [0.0; 2];
        dense.gemv(1.0, &x, 0.0, &mut y1);
        sparse.gemv(1.0, &x, 0.0, &mut y2);
        assert_eq!(y1, y2);
        let mut t1 = [0.0; 2];
        let mut t2 = [0.0; 2];
        dense.gemv_trans(1.0, &x, 0.0, &mut t1);
        sparse.gemv_trans(1.0, &x, 0.0, &mut t2);
        assert_eq!(t1, t2);
    }
}
