//! Benchmark workload definitions, scaled down from the paper's cluster
//! sizes to a single machine but preserving the weak-scaling structure
//! (fixed work per place) and the workload *kinds* (dense training matrices
//! for the regressions, a sparse link matrix for PageRank).

use gml_apps::{LinRegConfig, LogRegConfig, PageRankConfig};

/// The three benchmark applications of §VII.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppKind {
    /// Linear Regression (CG).
    LinReg,
    /// Logistic Regression (gradient descent).
    LogReg,
    /// PageRank power iteration.
    PageRank,
}

impl AppKind {
    /// All three paper benchmarks.
    pub const ALL: [AppKind; 3] = [AppKind::LinReg, AppKind::LogReg, AppKind::PageRank];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::LinReg => "LinReg",
            AppKind::LogReg => "LogReg",
            AppKind::PageRank => "PageRank",
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Workload scale multiplier (`GML_BENCH_SCALE`, default 1).
pub fn scale() -> f64 {
    env_f64("GML_BENCH_SCALE", 1.0)
}

/// The place counts to sweep (`GML_BENCH_PLACES`). Default mirrors the
/// paper's 2–44 sweep at a coarser granularity.
pub fn bench_places() -> Vec<usize> {
    let default = vec![2, 4, 8, 12, 16, 24, 32, 44];
    if let Ok(v) = std::env::var("GML_BENCH_PLACES") {
        let parsed: Vec<usize> =
            v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n >= 2).collect();
        if parsed.is_empty() {
            eprintln!(
                "GML_BENCH_PLACES={v:?} has no usable entries (need integers >= 2); \
                 using the default sweep {default:?}"
            );
            return default;
        }
        return parsed;
    }
    default
}

/// Repetitions per configuration (`GML_BENCH_RUNS`; paper used 30, we
/// default to 3 on a single machine).
pub fn bench_runs() -> usize {
    env_usize("GML_BENCH_RUNS", 3)
}

/// Iterations per run (`GML_BENCH_ITERS`; paper used 30).
pub fn bench_iters() -> u64 {
    env_usize("GML_BENCH_ITERS", 30) as u64
}

/// LinReg: the paper trained 500 features × 50 000 examples/place; scaled
/// to 50 × 1 000 by default.
pub fn linreg_cfg(iterations: u64) -> LinRegConfig {
    let s = scale();
    LinRegConfig {
        examples_per_place: (1000.0 * s) as usize,
        features: (50.0 * s.sqrt()) as usize,
        iterations,
        lambda: 1e-6,
        seed: 21,
    }
}

/// LogReg: same training-set shape as LinReg.
pub fn logreg_cfg(iterations: u64) -> LogRegConfig {
    let s = scale();
    LogRegConfig {
        examples_per_place: (1000.0 * s) as usize,
        features: (50.0 * s.sqrt()) as usize,
        iterations,
        lambda: 1e-3,
        learning_rate: 1.0,
        seed: 33,
    }
}

/// PageRank: the paper used a network with 2M edges **per place** (weak
/// scaling over edges). We mirror that reading: the node count is fixed and
/// the out-degree grows with the place count so each place always holds the
/// same number of edges (200 000 per place by default; the paper's 2M scaled
/// by 10×). This keeps per-place SpMV work and the duplicated rank
/// vector's size constant across the sweep — matching the paper's
/// flattening checkpoint times (Table III) and PageRank's low resilient
/// overhead per unit compute (Fig 4).
pub fn pagerank_cfg_for(iterations: u64, places: usize) -> PageRankConfig {
    let s = scale();
    let nodes_total = (16_000.0 * s) as usize;
    let edges_per_place = (200_000.0 * s) as usize;
    let out_degree = (edges_per_place * places.max(1) / nodes_total).max(1);
    PageRankConfig {
        // PageRankConfig scales nodes by the group size; divide back so the
        // total stays fixed across the sweep.
        nodes_per_place: (nodes_total / places.max(1)).max(1),
        out_degree,
        iterations,
        alpha: 0.85,
        seed: 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert_eq!(AppKind::ALL.len(), 3);
        assert!(bench_places().iter().all(|&p| p >= 2));
        assert!(bench_runs() >= 1);
        assert!(bench_iters() >= 1);
        assert!(linreg_cfg(10).examples_per_place >= 1);
        assert!(pagerank_cfg_for(10, 4).nodes_per_place >= 1);
        assert_eq!(logreg_cfg(7).iterations, 7);
    }
}
