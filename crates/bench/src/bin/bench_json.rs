//! Machine-readable perf trajectory: runs the serialization throughput
//! benchmarks (the checkpoint plane's hot path) and the intra-place kernel
//! benchmarks (pooled vs forced-serial), writing the results as
//! `BENCH_serial_throughput.json` and `BENCH_kernel_throughput.json` in the
//! current directory, so successive commits can be compared without
//! scraping bench stdout.
//!
//! Every file is stamped with host metadata (resolved worker count, cpu
//! count, the raw `GML_WORKERS` setting) — speedups are only comparable at
//! equal width, and `bench_regress` enforces that before diffing.
//!
//! Usage: `cargo run --release -p gml-bench --bin bench_json`

use apgas::mem::{self, MemTag};
use apgas::place::PlaceGroup;
use apgas::pool;
use apgas::runtime::{Ctx, Runtime, RuntimeConfig};
use apgas::serial::{arena, fallback, read_vec, write_slice, Serial};
use bytes::BytesMut;
use criterion::{BatchSize, BenchResult, Criterion};
use gml_core::{
    codec, AppResilientStore, CodecConfig, DistBlockMatrix, DistVector, ExecutorConfig,
    GmlResult, ResilientExecutor, ResilientIterativeApp, ResilientStore, RestoreMode,
    Snapshottable,
};
use gml_matrix::{builder, BlockData, DenseMatrix, SparseCSR};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

fn run(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_throughput");
    let n = 1_000_000usize;
    let data = builder::random_vector(n, 11).into_vec();

    g.bench_function("vec_f64_1m_encode_bulk", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
            write_slice(black_box(&data), &mut buf);
            black_box(buf.freeze())
        })
    });
    g.bench_function("vec_f64_1m_encode_elementwise", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
            fallback::write_slice(black_box(&data), &mut buf);
            black_box(buf.freeze())
        })
    });
    let encoded = {
        let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
        write_slice(&data, &mut buf);
        buf.freeze()
    };
    g.bench_function("vec_f64_1m_decode_bulk", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut by| black_box(read_vec::<f64>(&mut by)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("vec_f64_1m_decode_elementwise", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut by| black_box(fallback::read_vec::<f64>(&mut by)),
            BatchSize::LargeInput,
        )
    });
    let sparse = builder::random_csr(6000, 6000, 8, 13);
    g.bench_function(format!("csr_nnz{}_encode", sparse.nnz()), |b| {
        b.iter(|| black_box(sparse.to_bytes()))
    });
    let sparse_bytes = sparse.to_bytes();
    g.bench_function(format!("csr_nnz{}_decode", sparse.nnz()), |b| {
        b.iter_batched(
            || sparse_bytes.clone(),
            |by| black_box(SparseCSR::from_bytes(by)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// The intra-place kernel pool benchmarks: every kernel pair runs the same
/// chunking pooled and under [`pool::serial_scope`], so the ratio isolates
/// the parallel win (or the overhead floor on narrow machines).
fn run_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_throughput");

    // SpMV at 1M x 1M with ~1 nnz per row — the ISSUE's headline size.
    let a = builder::random_csr(1_000_000, 1_000_000, 1, 21);
    let x = builder::random_vector(1_000_000, 22);
    let mut y = vec![0.0; 1_000_000];
    g.bench_function(format!("spmv_1m_nnz{}_pooled", a.nnz()), |b| {
        b.iter(|| a.spmv(1.0, black_box(x.as_slice()), 0.0, black_box(&mut y)))
    });
    g.bench_function(format!("spmv_1m_nnz{}_serial", a.nnz()), |b| {
        b.iter(|| {
            pool::serial_scope(|| a.spmv(1.0, black_box(x.as_slice()), 0.0, black_box(&mut y)))
        })
    });
    g.bench_function(format!("spmv_1m_nnz{}_reference", a.nnz()), |b| {
        b.iter(|| a.spmv_reference(1.0, black_box(x.as_slice()), 0.0, black_box(&mut y)))
    });

    // Dense GEMM at 512^3: blocked pooled, blocked forced-serial, and the
    // scalar reference twin (the blocked-vs-reference ratio is the headline).
    g.sample_size(5);
    let da = builder::random_dense(512, 512, 23);
    let db = builder::random_dense(512, 512, 24);
    let mut dc = DenseMatrix::zeros(512, 512);
    g.bench_function("gemm_512_pooled", |b| {
        b.iter(|| da.gemm(1.0, black_box(&db), 0.0, black_box(&mut dc)))
    });
    g.bench_function("gemm_512_serial", |b| {
        b.iter(|| pool::serial_scope(|| da.gemm(1.0, black_box(&db), 0.0, black_box(&mut dc))))
    });
    g.bench_function("gemm_512_reference", |b| {
        b.iter(|| da.gemm_reference(1.0, black_box(&db), 0.0, black_box(&mut dc)))
    });

    // Gram kernel: tall-skinny AᵀB accumulate, the NMF inner-product shape.
    let ta = builder::random_dense(100_000, 32, 27);
    let tb = builder::random_dense(100_000, 32, 28);
    let mut tc = DenseMatrix::zeros(32, 32);
    g.bench_function("gemm_tn_acc_100k_32_blocked", |b| {
        b.iter(|| ta.gemm_tn_acc(black_box(&tb), black_box(&mut tc)))
    });
    g.bench_function("gemm_tn_acc_100k_32_reference", |b| {
        b.iter(|| ta.gemm_tn_acc_reference(black_box(&tb), black_box(&mut tc)))
    });

    // Register-blocked GEMV at 2048^2 (memory-bandwidth-bound).
    g.sample_size(20);
    let ga = builder::random_dense(2048, 2048, 29);
    let gx = builder::random_vector(2048, 30);
    let mut gy = vec![0.0; 2048];
    g.bench_function("gemv_2048_blocked", |b| {
        b.iter(|| ga.gemv(1.0, black_box(gx.as_slice()), 0.0, black_box(&mut gy)))
    });
    g.bench_function("gemv_2048_reference", |b| {
        b.iter(|| ga.gemv_reference(1.0, black_box(gx.as_slice()), 0.0, black_box(&mut gy)))
    });

    // Cache-blocked transpose at 1024^2 (allocates the output each pass,
    // same as the reference — the ratio isolates the access pattern).
    g.sample_size(10);
    let tra = builder::random_dense(1024, 1024, 33);
    g.bench_function("transpose_1024_blocked", |b| b.iter(|| black_box(tra.transpose())));
    g.bench_function("transpose_1024_reference", |b| {
        b.iter(|| black_box(tra.transpose_reference()))
    });

    // Vector reduction (dot, 1M) — latency-bound, the hardest to speed up.
    g.sample_size(20);
    let v = builder::random_vector(1_000_000, 25);
    let w = builder::random_vector(1_000_000, 26);
    g.bench_function("dot_1m_pooled", |b| b.iter(|| black_box(v.dot(&w))));
    g.bench_function("dot_1m_serial", |b| {
        b.iter(|| pool::serial_scope(|| black_box(v.dot(&w))))
    });
    g.bench_function("dot_1m_reference", |b| b.iter(|| black_box(v.dot_reference(&w))));

    // axpy at 1M: streaming update (alpha tiny so the vector stays bounded
    // across however many iterations the sampler runs).
    let mut av = builder::random_vector(1_000_000, 34);
    g.bench_function("axpy_1m_blocked", |b| {
        b.iter(|| {
            av.axpy(1e-9, black_box(&w));
        })
    });
    g.bench_function("axpy_1m_reference", |b| {
        b.iter(|| {
            av.axpy_reference(1e-9, black_box(&w));
        })
    });
    g.finish();
}

/// Hand-rolled sampler for benchmarks that must run inside the APGAS
/// runtime (Criterion's driver can't cross the `Runtime::run` boundary):
/// same statistics, same `BenchResult` shape as the criterion groups.
fn sample_ns(name: &str, samples: usize, mut f: impl FnMut()) -> BenchResult {
    let mut mean = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        let ns = t0.elapsed().as_nanos() as f64;
        mean += ns / samples as f64;
        min = min.min(ns);
        max = max.max(ns);
    }
    BenchResult { name: name.to_string(), mean_ns: mean, min_ns: min, max_ns: max, samples }
}

/// Numbers harvested from the in-runtime checkpoint benchmarks, alongside
/// the `BenchResult` rows.
struct CkptNumbers {
    results: Vec<BenchResult>,
    /// Mean synchronous capture time per two-phase checkpoint (ns).
    capture_ns: f64,
    /// Mean background ship busy time per two-phase checkpoint (ns).
    ship_ns: f64,
    /// Encode-arena reuse counters over the sampled checkpoints.
    pool_hits: u64,
    pool_misses: u64,
    /// Memory-ledger high-water marks at the end of the checkpoint phase.
    /// Process-global and cumulative over the whole `bench_json` run (the
    /// checkpoint phase runs last), so they bound the run's footprint; all
    /// zero with the `mem-profile` feature off.
    mem_store_high_water: u64,
    mem_arena_parked_high_water: u64,
    mem_heap_peak: u64,
    /// Measured backup-transfer wire bytes over the small-mutation workload,
    /// raw codec vs delta+compressed (same epochs, same mutations).
    wire_bytes_raw: u64,
    wire_bytes_delta_comp: u64,
    /// Codec wall time (encode + decode) spent during the delta leg — the
    /// honest cost of the wire-byte reduction.
    codec_ns_small_mutation: u64,
}

/// Minimal iterative app for the overlap measurement: scale a 16-block-per-
/// place dense matrix each step, checkpoint it every iteration.
struct ScaleApp {
    m: DistBlockMatrix,
    total_iters: u64,
}

impl ResilientIterativeApp for ScaleApp {
    fn is_finished(&self, _ctx: &Ctx, iteration: u64) -> bool {
        iteration >= self.total_iters
    }

    fn step(&mut self, ctx: &Ctx, _iteration: u64) -> GmlResult<()> {
        self.m.scale(ctx, 1.0 + 1e-9)
    }

    fn checkpoint(&mut self, ctx: &Ctx, store: &mut AppResilientStore) -> GmlResult<()> {
        store.start_new_snapshot();
        store.save(ctx, &self.m)?;
        store.commit(ctx)
    }

    fn restore(
        &mut self,
        ctx: &Ctx,
        new_places: &PlaceGroup,
        store: &mut AppResilientStore,
        _snapshot_iteration: u64,
        rebalance: bool,
    ) -> GmlResult<()> {
        self.m.remake(ctx, new_places, rebalance)?;
        store.restore(ctx, &mut [&mut self.m])
    }
}

/// 768x512 dense matrix in 64 48x128 blocks over 4 places: 16 blocks
/// (~768KB) per place, so the batched transport collapses 16 per-pair
/// round trips into one framed message per place.
fn bench_matrix(ctx: &Ctx, g: &PlaceGroup) -> DistBlockMatrix {
    let m = DistBlockMatrix::make(ctx, 768, 512, 16, 4, 4, 1, g, false).unwrap();
    m.init_with(ctx, |bi, bj, _r0, _c0, rows, cols| {
        BlockData::Dense(builder::random_dense(rows, cols, 31 + (bi * 4 + bj) as u64))
    })
    .unwrap();
    m
}

/// The checkpoint-plane benchmarks, run inside a 4-place resilient runtime:
/// batched vs per-pair snapshot transport, the two-phase capture/commit
/// path with its phase split, and a full executor run with checkpoint/
/// compute overlap off vs on.
fn run_checkpoint() -> CkptNumbers {
    Runtime::run(RuntimeConfig::new(4).resilient(true), |ctx| {
        let g = ctx.world();
        let m = bench_matrix(ctx, &g);
        let mut results = Vec::new();

        // Transport comparison: the same 64-block snapshot through the
        // batched fast path and the per-pair reference path (ships run
        // inline here — no deferral — so this is end-to-end transport).
        for (batched, name) in [(true, "snapshot_batched"), (false, "snapshot_per_pair")] {
            let store = ResilientStore::make_with_batching(ctx, batched).unwrap();
            let snap = m.make_snapshot(ctx, &store).unwrap(); // warm-up
            store.delete_snapshot(ctx, snap.snap_id).unwrap();
            results.push(sample_ns(&format!("checkpoint_throughput/{name}"), 15, || {
                let snap = m.make_snapshot(ctx, &store).unwrap();
                store.delete_snapshot(ctx, snap.snap_id).unwrap();
            }));
        }

        // Two-phase checkpoint end-to-end (capture + commit barrier), with
        // the capture/ship phase split harvested from the app store.
        let mut astore = AppResilientStore::make(ctx).unwrap();
        astore.start_new_snapshot();
        astore.save(ctx, &m).unwrap(); // warm-up (also primes the arena)
        astore.commit(ctx).unwrap();
        astore.take_phases();
        let samples = 15;
        results.push(sample_ns("checkpoint_throughput/two_phase_commit_e2e", samples, || {
            astore.start_new_snapshot();
            astore.save(ctx, &m).unwrap();
            astore.commit(ctx).unwrap();
        }));
        let (capture, ship) = astore.take_phases();
        let capture_ns = capture.as_nanos() as f64 / samples as f64;
        let ship_ns = ship.as_nanos() as f64 / samples as f64;

        // Encode-arena reuse at checkpoint block size: steady-state encodes
        // must recycle their buffers (the counters are thread-local, so the
        // loop runs the encode on this thread and reads its own counters).
        let block = builder::random_dense(48, 128, 7);
        let _ = black_box(block.to_bytes()); // warm-up: park one buffer
        arena::reset_reuse_stats();
        results.push(sample_ns("checkpoint_throughput/encode_arena_48x128", 200, || {
            let _ = black_box(block.to_bytes());
        }));
        let pool = arena::reuse_stats();

        // Overlap off vs on: the same 6-iteration checkpoint-every-pass run,
        // once with commit() as the ship barrier, once with ships draining
        // behind the next iteration's compute.
        for (overlap, name) in [(false, "run_overlap_off"), (true, "run_overlap_on")] {
            results.push(sample_ns(&format!("checkpoint_throughput/{name}"), 5, || {
                let mut app = ScaleApp { m: bench_matrix(ctx, &g), total_iters: 6 };
                let mut store = AppResilientStore::make(ctx).unwrap();
                let exec = ResilientExecutor::new(
                    ExecutorConfig::new(1, RestoreMode::Shrink).overlap_ship(overlap),
                );
                exec.run(ctx, &mut app, &g, &mut store).unwrap();
            }));
        }

        // Small-mutation PageRank-style workload through the checkpoint
        // codec: a 64k rank vector over 4 places, the same leading slice of
        // every segment nudged each epoch (a localized update well under the
        // dirty-chunk threshold), checkpointed every epoch. The raw and
        // delta+compressed legs run identical epochs; the shipped-bytes
        // counter measures the wire volume that actually crossed places, and
        // the timing rows keep the codec's encode cost honest.
        let mut wire = [0u64; 2];
        let mut codec_ns = 0u64;
        for (i, (cfg, name)) in [
            (CodecConfig::raw(), "small_mutation_raw"),
            (CodecConfig::from_env(), "small_mutation_delta_comp"),
        ]
        .into_iter()
        .enumerate()
        {
            let dv = DistVector::make(ctx, 65_536, &g).unwrap();
            dv.init(ctx, |i| 1.0 / (1.0 + i as f64)).unwrap();
            let mut store = AppResilientStore::make_with_codec(ctx, cfg).unwrap();
            store.start_new_snapshot();
            store.save(ctx, &dv).unwrap(); // epoch 0: full bases (warm-up)
            store.commit(ctx).unwrap();
            let stats0 = ctx.stats();
            let codec0 = codec::counters();
            results.push(sample_ns(&format!("checkpoint_throughput/{name}"), 10, || {
                dv.for_each_segment(ctx, |_, _, seg| {
                    let head = &mut seg.as_mut_slice()[..64];
                    for x in head {
                        *x = (*x * 0.85) + 0.15;
                    }
                })
                .unwrap();
                store.start_new_snapshot();
                store.save(ctx, &dv).unwrap();
                store.commit(ctx).unwrap();
            }));
            wire[i] = ctx.stats().since(&stats0).bytes_shipped;
            if i == 1 {
                let d = codec::counters().since(&codec0);
                codec_ns = d.encode_nanos + d.decode_nanos;
            }
        }

        CkptNumbers {
            results,
            capture_ns,
            ship_ns,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            mem_store_high_water: mem::high_water(MemTag::StoreShard),
            mem_arena_parked_high_water: mem::high_water(MemTag::SerialArena),
            mem_heap_peak: mem::heap_peak_bytes(),
            wire_bytes_raw: wire[0],
            wire_bytes_delta_comp: wire[1],
            codec_ns_small_mutation: codec_ns,
        }
    })
    .unwrap()
}

fn mean_of<'a>(results: &'a [BenchResult], suffix: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.name.ends_with(suffix))
}

/// Render one result set as a JSON benchmarks array (no trailing newline).
fn benchmarks_json(results: &[BenchResult]) -> String {
    let mut json = String::from("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{sep}\n",
            r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    json.push_str("  ]");
    json
}

fn push_speedup(json: &mut String, results: &[BenchResult], key: &str, fast: &str, base: &str) {
    if let (Some(f), Some(b)) = (mean_of(results, fast), mean_of(results, base)) {
        json.push_str(&format!(",\n  \"{key}\": {:.2}", b.mean_ns / f.mean_ns));
    }
}

fn write_file(path: &str, json: &str) {
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
}

/// Host-metadata stamp shared by every output file: numbers are only
/// comparable between runs at equal worker width on similar hardware, and
/// `bench_regress` refuses to diff files whose stamps disagree.
fn host_meta_json() -> String {
    let gml_workers = match std::env::var("GML_WORKERS") {
        Ok(v) if !v.is_empty() => format!("\"{v}\""),
        _ => "null".to_string(),
    };
    format!(
        "  \"workers\": {},\n  \"available_parallelism\": {},\n  \"gml_workers_env\": {},\n",
        pool::workers(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        gml_workers,
    )
}

fn main() {
    let mut c = Criterion::default();
    run(&mut c);
    run_kernels(&mut c);
    let (serial, kernel): (Vec<BenchResult>, Vec<BenchResult>) = c
        .results()
        .iter()
        .cloned()
        .partition(|r| r.name.starts_with("serial_throughput/"));

    let mut json = format!("{{\n{}{}", host_meta_json(), benchmarks_json(&serial));
    // Derived speedups of the bulk fast path over the element-wise codec.
    push_speedup(
        &mut json,
        &serial,
        "encode_speedup_f64_1m",
        "vec_f64_1m_encode_bulk",
        "vec_f64_1m_encode_elementwise",
    );
    push_speedup(
        &mut json,
        &serial,
        "decode_speedup_f64_1m",
        "vec_f64_1m_decode_bulk",
        "vec_f64_1m_decode_elementwise",
    );
    json.push_str("\n}\n");
    write_file("BENCH_serial_throughput.json", &json);

    // Kernel pool results: record the worker width the numbers were taken
    // at — a 1-core container honestly reports ~1.0x.
    let mut json = format!("{{\n{}{}", host_meta_json(), benchmarks_json(&kernel));
    // The spmv names embed the realized nnz — match on the stable parts.
    let spmv_pooled = kernel.iter().find(|r| r.name.contains("spmv") && r.name.ends_with("_pooled"));
    let spmv_serial = kernel.iter().find(|r| r.name.contains("spmv") && r.name.ends_with("_serial"));
    if let (Some(p), Some(s)) = (spmv_pooled, spmv_serial) {
        json.push_str(&format!(",\n  \"spmv_speedup_1m\": {:.2}", s.mean_ns / p.mean_ns));
    }
    push_speedup(&mut json, &kernel, "gemm_speedup_512", "gemm_512_pooled", "gemm_512_serial");
    push_speedup(&mut json, &kernel, "dot_speedup_1m", "dot_1m_pooled", "dot_1m_serial");
    // Blocked-vs-reference ratios: the win from tiling/packing/SIMD alone,
    // independent of the pool (reference twins are always serial).
    let spmv_reference =
        kernel.iter().find(|r| r.name.contains("spmv") && r.name.ends_with("_reference"));
    if let (Some(p), Some(r)) = (spmv_pooled, spmv_reference) {
        json.push_str(&format!(",\n  \"spmv_1m_blocked_vs_reference\": {:.2}", r.mean_ns / p.mean_ns));
    }
    push_speedup(
        &mut json,
        &kernel,
        "gemm_512_blocked_vs_reference",
        "gemm_512_pooled",
        "gemm_512_reference",
    );
    push_speedup(
        &mut json,
        &kernel,
        "gemm_tn_acc_100k_32_blocked_vs_reference",
        "gemm_tn_acc_100k_32_blocked",
        "gemm_tn_acc_100k_32_reference",
    );
    push_speedup(
        &mut json,
        &kernel,
        "gemv_2048_blocked_vs_reference",
        "gemv_2048_blocked",
        "gemv_2048_reference",
    );
    push_speedup(
        &mut json,
        &kernel,
        "transpose_1024_blocked_vs_reference",
        "transpose_1024_blocked",
        "transpose_1024_reference",
    );
    push_speedup(&mut json, &kernel, "dot_1m_blocked_vs_reference", "dot_1m_pooled", "dot_1m_reference");
    push_speedup(&mut json, &kernel, "axpy_1m_blocked_vs_reference", "axpy_1m_blocked", "axpy_1m_reference");
    json.push_str("\n}\n");
    write_file("BENCH_kernel_throughput.json", &json);

    // Checkpoint pipeline: transport speedup, capture/ship phase split,
    // overlap saving on a real executor run, encode-arena reuse. Like the
    // kernel numbers, the overlap saving is width-dependent — the ship
    // threads need a spare core to overlap with compute, so a 1-core
    // container honestly reports ~1.0x.
    let ckpt = run_checkpoint();
    // Codec-config stamp: wire-byte numbers are only comparable between runs
    // taken under the same checkpoint codec, and `bench_regress` refuses to
    // diff this file when the stamps disagree.
    let ckpt_cfg = CodecConfig::from_env();
    let codec_meta = format!(
        "  \"ckpt_codec\": \"{}\",\n  \"ckpt_level\": {},\n  \"ckpt_chunk\": {},\n  \
         \"ckpt_lossy_tol\": {},\n",
        ckpt_cfg.mode_label(),
        ckpt_cfg.level,
        ckpt_cfg.chunk,
        ckpt_cfg.lossy_tol.unwrap_or(0.0),
    );
    let mut json =
        format!("{{\n{}{}{}", host_meta_json(), codec_meta, benchmarks_json(&ckpt.results));
    push_speedup(
        &mut json,
        &ckpt.results,
        "batched_transport_speedup",
        "snapshot_batched",
        "snapshot_per_pair",
    );
    json.push_str(&format!(",\n  \"capture_mean_ns\": {:.1}", ckpt.capture_ns));
    json.push_str(&format!(",\n  \"ship_mean_ns\": {:.1}", ckpt.ship_ns));
    push_speedup(
        &mut json,
        &ckpt.results,
        "overlap_run_speedup",
        "run_overlap_on",
        "run_overlap_off",
    );
    if let (Some(on), Some(off)) = (
        mean_of(&ckpt.results, "run_overlap_on"),
        mean_of(&ckpt.results, "run_overlap_off"),
    ) {
        json.push_str(&format!(
            ",\n  \"overlap_saving_ns_per_run\": {:.1}",
            off.mean_ns - on.mean_ns
        ));
    }
    json.push_str(&format!(
        ",\n  \"encode_arena_hits\": {},\n  \"encode_arena_misses\": {}",
        ckpt.pool_hits, ckpt.pool_misses
    ));
    // Memory footprint keys: the regress gate diffs these with the same
    // per-file tolerance machinery as the timing minimums, so a checkpoint
    // path that starts holding substantially more memory fails CI exactly
    // like one that got slower.
    json.push_str(&format!(
        ",\n  \"mem_store_high_water_bytes\": {},\n  \"mem_arena_parked_high_water_bytes\": {},\n  \"mem_heap_peak_bytes\": {}",
        ckpt.mem_store_high_water, ckpt.mem_arena_parked_high_water, ckpt.mem_heap_peak
    ));
    // Small-mutation wire volume: the delta+compressed leg's backup
    // transfers vs the raw leg's, over identical epochs — the headline
    // wire-byte reduction, with the codec time spent earning it alongside.
    json.push_str(&format!(
        ",\n  \"ckpt_wire_bytes_raw\": {},\n  \"ckpt_wire_bytes_delta_comp\": {}",
        ckpt.wire_bytes_raw, ckpt.wire_bytes_delta_comp
    ));
    if ckpt.wire_bytes_delta_comp > 0 {
        json.push_str(&format!(
            ",\n  \"wire_reduction_small_mutation\": {:.2}",
            ckpt.wire_bytes_raw as f64 / ckpt.wire_bytes_delta_comp as f64
        ));
    }
    json.push_str(&format!(
        ",\n  \"codec_ns_small_mutation\": {}",
        ckpt.codec_ns_small_mutation
    ));
    json.push_str("\n}\n");
    write_file("BENCH_checkpoint_throughput.json", &json);
}
