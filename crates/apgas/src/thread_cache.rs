//! A cached-thread executor.
//!
//! X10's runtime grows a place's worker pool when activities block (e.g. in
//! a `finish` wait or a remote fetch), so that progress is never lost to a
//! blocked worker. We reproduce that with a simple cache of reusable OS
//! threads shared by the whole runtime: submitting a job reuses an idle
//! thread when one exists and spawns a fresh one otherwise. Idle threads
//! park for a grace period and then exit, so test suites that create many
//! runtimes do not accumulate threads.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

const IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// A pool of reusable worker threads with no upper bound on size.
pub struct ThreadCache {
    idle: Arc<Mutex<Vec<Sender<Job>>>>,
}

impl ThreadCache {
    pub fn new() -> Self {
        ThreadCache { idle: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Run `job` on a cached or freshly spawned thread.
    pub fn submit(&self, job: Job) {
        let mut job = job;
        loop {
            let worker = self.idle.lock().pop();
            match worker {
                Some(tx) => match tx.send(job) {
                    Ok(()) => return,
                    // The worker timed out and exited between pop and send;
                    // recover the job and try the next candidate.
                    Err(e) => job = e.into_inner(),
                },
                None => {
                    self.spawn_worker(job);
                    return;
                }
            }
        }
    }

    fn spawn_worker(&self, first: Job) {
        let idle = Arc::clone(&self.idle);
        std::thread::Builder::new()
            .name("apgas-worker".into())
            .spawn(move || {
                // Zero-capacity rendezvous: a send can only succeed while
                // this worker is actively receiving, so a job can never be
                // stranded in a buffer when the worker times out and exits
                // (the sender observes the disconnect and retries instead).
                let (tx, rx) = bounded::<Job>(0);
                let mut job = first;
                loop {
                    job();
                    idle.lock().push(tx.clone());
                    match rx.recv_timeout(IDLE_TIMEOUT) {
                        Ok(next) => job = next,
                        Err(_) => {
                            // Timed out or cache dropped: deregister (best
                            // effort; submit() tolerates stale entries).
                            let mut q = idle.lock();
                            q.retain(|s| !s.same_channel(&tx));
                            return;
                        }
                    }
                }
            })
            .expect("spawn apgas worker thread");
    }
}

impl Default for ThreadCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_many_jobs() {
        let cache = ThreadCache::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = bounded(0);
        for _ in 0..64 {
            let counter = counter.clone();
            let tx = tx.clone();
            cache.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..64 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn reuses_idle_threads() {
        let cache = ThreadCache::new();
        let (tx, rx) = bounded(0);
        // Run jobs strictly one after another. A finishing worker
        // re-registers *after* delivering its result, so the next submit
        // may race it and spawn one extra thread — but the pool must not
        // grow linearly with the job count.
        for _ in 0..8 {
            let tx = tx.clone();
            cache.submit(Box::new(move || tx.send(std::thread::current().id()).unwrap()));
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        std::thread::sleep(Duration::from_millis(50));
        assert!(cache.idle.lock().len() <= 3, "sequential jobs must reuse workers");
    }

    #[test]
    fn blocked_jobs_do_not_starve_new_jobs() {
        let cache = ThreadCache::new();
        let (release_tx, release_rx) = bounded::<()>(0);
        let (done_tx, done_rx) = bounded(0);
        // A job that blocks until released.
        {
            let done = done_tx.clone();
            cache.submit(Box::new(move || {
                release_rx.recv().unwrap();
                done.send("blocked").unwrap();
            }));
        }
        // A second job must still run (on a new thread).
        cache.submit(Box::new(move || done_tx.send("free").unwrap()));
        assert_eq!(done_rx.recv_timeout(Duration::from_secs(5)).unwrap(), "free");
        release_tx.send(()).unwrap();
        assert_eq!(done_rx.recv_timeout(Duration::from_secs(5)).unwrap(), "blocked");
    }
}
