//! Parity oracle for the batched checkpoint transport: checkpoints the same
//! deterministic objects through the per-pair `save_pair` reference path
//! (`per_pair`) and the single-framed-message `save_batch` fast path
//! (`batched`), then prints every place's store inventory and one FNV-1a
//! hash per restored object. The `checkpoint_parity` step in `ci.sh` runs
//! this binary once per mode and diffs the dumps bit-for-bit — any
//! divergence in placement, payload bytes, or restored contents between the
//! two transports fails CI.
//!
//! Usage: `cargo run --release -p gml-bench --bin checkpoint_parity -- {batched|per_pair}`

use apgas::digest::fnv1a_f64s;
use apgas::runtime::{Runtime, RuntimeConfig};
use gml_core::{
    DistDenseMatrix, DistSparseMatrix, DistVector, DupDenseMatrix, DupVector, ResilientStore,
    Snapshottable,
};
use gml_matrix::builder;

fn report(name: &str, values: &[f64]) {
    // The shared bit-pattern digest (see `apgas::digest`) — one
    // implementation for parity gates, replica votes, and checksummed
    // steps, instead of a drifting local copy.
    println!("{name} {:016x}", fnv1a_f64s(values));
}

/// Deterministic pseudo-random fill, identical in both processes.
fn val(i: usize) -> f64 {
    ((i.wrapping_mul(2654435761)) % 10_000) as f64 * 0.25 - 1250.0
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let batched = match mode.as_str() {
        "batched" => true,
        "per_pair" => false,
        other => {
            eprintln!("usage: checkpoint_parity {{batched|per_pair}} (got {other:?})");
            std::process::exit(2);
        }
    };
    println!("mode {mode}");

    Runtime::run(RuntimeConfig::new(4).resilient(true), move |ctx| {
        let g = ctx.world();
        let store = ResilientStore::make_with_batching(ctx, batched).unwrap();

        // The same objects, ids, and contents in both modes: creation order
        // fixes the object ids, the store counter fixes the snap ids.
        let mut dv = DistVector::make(ctx, 10_000, &g).unwrap();
        dv.init(ctx, |i| val(i)).unwrap();
        let mut dup = DupVector::make(ctx, 4_096, &g).unwrap();
        dup.init(ctx, |i| val(i + 17)).unwrap();
        let mut dd = DupDenseMatrix::make(ctx, 64, 48, &g).unwrap();
        dd.init(ctx, |i, j| val(i * 48 + j)).unwrap();
        let mut dm = DistDenseMatrix::make(ctx, 96, 64, &g).unwrap();
        dm.init(ctx, |i, j| val(i * 64 + j + 3)).unwrap();
        let mut ds = DistSparseMatrix::make(ctx, 400, 300, &g).unwrap();
        ds.init_blocks(ctx, |bi, _r0, _c0, rows, cols| {
            builder::random_csr(rows, cols, 4, 1000 + bi as u64)
        })
        .unwrap();

        let snaps = [
            dv.make_snapshot(ctx, &store).unwrap(),
            dup.make_snapshot(ctx, &store).unwrap(),
            dd.make_snapshot(ctx, &store).unwrap(),
            dm.make_snapshot(ctx, &store).unwrap(),
            ds.make_snapshot(ctx, &store).unwrap(),
        ];

        // Both transports must produce the identical inventory: same entry
        // placement, same snapshot count, same payload bytes, per place.
        for inv in store.inventory(ctx) {
            println!(
                "inv place={} alive={} entries={} snapshots={} bytes={}",
                inv.place.id(),
                inv.alive,
                inv.entries,
                inv.snapshots,
                inv.bytes
            );
        }

        // Wipe the mutable objects, restore everything, and hash: the
        // restored bits must match across transports.
        dv.init(ctx, |_| 0.0).unwrap();
        dup.init(ctx, |_| 0.0).unwrap();
        dd.init(ctx, |_, _| 0.0).unwrap();
        dm.init(ctx, |_, _| 0.0).unwrap();
        dv.restore_snapshot(ctx, &store, &snaps[0]).unwrap();
        dup.restore_snapshot(ctx, &store, &snaps[1]).unwrap();
        dd.restore_snapshot(ctx, &store, &snaps[2]).unwrap();
        dm.restore_snapshot(ctx, &store, &snaps[3]).unwrap();
        ds.restore_snapshot(ctx, &store, &snaps[4]).unwrap();

        report("dist_vector", dv.gather(ctx).unwrap().as_slice());
        report("dup_vector", dup.read_local(ctx).unwrap().as_slice());
        report("dup_dense", dd.local(ctx).unwrap().lock().as_slice());
        report("dist_dense", dm.gather_dense(ctx).unwrap().as_slice());
        report("dist_sparse", ds.gather_dense(ctx).unwrap().as_slice());
    })
    .unwrap();
}
