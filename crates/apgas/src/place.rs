//! Places and place groups.
//!
//! A [`Place`] is the unit of failure and data locality (X10's
//! `x10.lang.Place`): an identifier for one simulated process. A
//! [`PlaceGroup`] is an ordered collection of places (X10's
//! `x10.lang.PlaceGroup`); GML objects are constructed over a group and can
//! be *remade* over a different group after a failure. Group **indices**
//! (positions within the group) are distinct from place **ids**: when dead
//! places are filtered out, surviving places keep their ids but their
//! indices shift — exactly the behaviour the paper's snapshot keys rely on.

use std::fmt;
use std::sync::Arc;

/// A virtual process: the unit of locality and of failure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Place(u32);

impl Place {
    /// Construct a place handle from a raw id.
    pub const fn new(id: u32) -> Self {
        Place(id)
    }

    /// The stable numeric id of this place (never reused).
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Place zero: the immortal coordination place.
    pub const ZERO: Place = Place(0);
}

impl fmt::Debug for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Place({})", self.0)
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ordered, immutable collection of places.
///
/// Cloning is cheap (shared storage). Equality is element-wise.
#[derive(Clone, PartialEq, Eq)]
pub struct PlaceGroup {
    places: Arc<Vec<Place>>,
}

impl PlaceGroup {
    /// Build a group from an explicit ordered list of places.
    pub fn new(places: Vec<Place>) -> Self {
        PlaceGroup { places: Arc::new(places) }
    }

    /// The group `0..n` of the first `n` place ids.
    pub fn first(n: usize) -> Self {
        PlaceGroup::new((0..n as u32).map(Place::new).collect())
    }

    /// Number of places in the group.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// True when the group contains no places.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// The place at group index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn place(&self, i: usize) -> Place {
        self.places[i]
    }

    /// The group index of `p`, if `p` is a member.
    pub fn index_of(&self, p: Place) -> Option<usize> {
        self.places.iter().position(|&q| q == p)
    }

    /// True if `p` is a member of this group.
    pub fn contains(&self, p: Place) -> bool {
        self.index_of(p).is_some()
    }

    /// Iterate over the places in group order.
    pub fn iter(&self) -> impl Iterator<Item = Place> + '_ {
        self.places.iter().copied()
    }

    /// The group index following `i`, wrapping around.
    ///
    /// This is the "next place" used by the double in-memory snapshot store
    /// to choose where the backup copy of index `i`'s data lives.
    pub fn next_index(&self, i: usize) -> usize {
        debug_assert!(!self.is_empty());
        (i + 1) % self.places.len()
    }

    /// The place following `p` in group order (wrapping), if `p` is a member.
    pub fn next_place(&self, p: Place) -> Option<Place> {
        self.index_of(p).map(|i| self.place(self.next_index(i)))
    }

    /// A new group with every place in `dead` removed, preserving order.
    ///
    /// Surviving places keep their ids; their indices shift down — the
    /// "filtering out the dead places" operation from §IV-B of the paper.
    pub fn without(&self, dead: &[Place]) -> PlaceGroup {
        PlaceGroup::new(self.iter().filter(|p| !dead.contains(p)).collect())
    }

    /// A new group where each place in `dead` is substituted in-place by the
    /// next unused place from `spares` (the *replace-redundant* restoration
    /// mode). Returns `None` if there are not enough spares.
    pub fn replace(&self, dead: &[Place], spares: &[Place]) -> Option<PlaceGroup> {
        let mut fresh = spares.iter().filter(|s| !self.contains(**s) && !dead.contains(s));
        let mut out = Vec::with_capacity(self.len());
        for p in self.iter() {
            if dead.contains(&p) {
                out.push(*fresh.next()?);
            } else {
                out.push(p);
            }
        }
        Some(PlaceGroup::new(out))
    }

    /// The raw ordered slice of places.
    pub fn as_slice(&self) -> &[Place] {
        &self.places
    }
}

impl fmt::Debug for PlaceGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlaceGroup{:?}", self.places.iter().map(|p| p.id()).collect::<Vec<_>>())
    }
}

impl FromIterator<Place> for PlaceGroup {
    fn from_iter<T: IntoIterator<Item = Place>>(iter: T) -> Self {
        PlaceGroup::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_and_indexing() {
        let g = PlaceGroup::first(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.place(2), Place::new(2));
        assert_eq!(g.index_of(Place::new(3)), Some(3));
        assert_eq!(g.index_of(Place::new(9)), None);
        assert!(g.contains(Place::ZERO));
    }

    #[test]
    fn next_wraps() {
        let g = PlaceGroup::first(3);
        assert_eq!(g.next_index(0), 1);
        assert_eq!(g.next_index(2), 0);
        assert_eq!(g.next_place(Place::new(2)), Some(Place::new(0)));
        assert_eq!(g.next_place(Place::new(7)), None);
    }

    #[test]
    fn without_shifts_indices_but_keeps_ids() {
        let g = PlaceGroup::first(5);
        let survivors = g.without(&[Place::new(2)]);
        assert_eq!(survivors.len(), 4);
        // Place 3 keeps its id but its index shifts from 3 to 2.
        assert_eq!(survivors.index_of(Place::new(3)), Some(2));
        assert_eq!(survivors.place(2), Place::new(3));
    }

    #[test]
    fn replace_uses_spares_in_order() {
        let g = PlaceGroup::first(4);
        let spares = [Place::new(4), Place::new(5)];
        let r = g.replace(&[Place::new(1), Place::new(3)], &spares).expect("enough spares");
        assert_eq!(r.as_slice(), &[Place::new(0), Place::new(4), Place::new(2), Place::new(5)]);
        // Same size group: indices of survivors unchanged.
        assert_eq!(r.index_of(Place::new(2)), Some(2));
    }

    #[test]
    fn replace_fails_without_enough_spares() {
        let g = PlaceGroup::first(3);
        assert!(g.replace(&[Place::new(0), Place::new(1)], &[Place::new(3)]).is_none());
    }

    #[test]
    fn replace_skips_spares_already_in_group() {
        let g = PlaceGroup::new(vec![Place::new(0), Place::new(4), Place::new(2)]);
        let r = g
            .replace(&[Place::new(2)], &[Place::new(4), Place::new(5)])
            .expect("spare 5 available");
        assert_eq!(r.as_slice(), &[Place::new(0), Place::new(4), Place::new(5)]);
    }

    #[test]
    fn from_iterator_collects() {
        let g: PlaceGroup = (0..3).map(Place::new).collect();
        assert_eq!(g.len(), 3);
    }
}
