//! Criterion microbenchmarks for the resilience machinery itself: finish
//! bookkeeping (the source of Figs 2–4's overhead), snapshot/checkpoint
//! cost (Table III), restore by mode (Table IV), and broadcast cost.

use apgas::prelude::*;
use apgas::runtime::Runtime;
use criterion::{criterion_group, criterion_main, Criterion};
use gml_core::{DistBlockMatrix, DupVector, ResilientStore, Snapshottable};
use gml_matrix::{builder, BlockData};
use std::hint::black_box;

const PLACES: usize = 8;

/// Fan out one empty task per place under a finish — resilient mode pays
/// the place-zero bookkeeping round trips.
fn bench_finish_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("finish_fanout");
    g.sample_size(20);
    for resilient in [false, true] {
        let rt = Runtime::new(RuntimeConfig::new(PLACES).resilient(resilient));
        let label = if resilient { "resilient" } else { "non_resilient" };
        g.bench_function(label, |b| {
            b.iter(|| {
                rt.exec(|ctx| {
                    ctx.finish(|fs| {
                        for p in ctx.world().iter() {
                            fs.async_at(p, |_| {});
                        }
                    })
                    .unwrap();
                })
                .unwrap();
            })
        });
        rt.shutdown();
    }
    g.finish();
}

/// Checkpoint cost: snapshotting a dense DistBlockMatrix into the double
/// in-memory store (local copy + next-place backup per block).
fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    g.sample_size(10);
    let rt = Runtime::new(RuntimeConfig::new(PLACES).resilient(true));
    g.bench_function("dist_block_matrix_2k_x_64", |b| {
        b.iter(|| {
            rt.exec(|ctx| {
                let world = ctx.world();
                let store = ResilientStore::make(ctx).unwrap();
                let m = DistBlockMatrix::make(
                    ctx, 2048, 64, PLACES, 1, PLACES, 1, &world, false,
                )
                .unwrap();
                m.init_with(ctx, |_, _, r0, _, rows, cols| {
                    BlockData::Dense(builder::random_dense(rows, cols, r0 as u64))
                })
                .unwrap();
                let snap = m.make_snapshot(ctx, &store).unwrap();
                black_box(snap.total_bytes());
            })
            .unwrap();
        })
    });
    rt.shutdown();
    g.finish();
}

/// Restore cost by mode: block-by-block (same grid) vs overlap-copy
/// (repartitioned grid) — the paper's Fig 1-b vs Fig 1-c distinction.
fn bench_restore_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("restore");
    g.sample_size(10);
    for (label, rebalance) in [("shrink_same_grid", false), ("rebalance_overlap_copy", true)] {
        let rt = Runtime::new(RuntimeConfig::new(PLACES).resilient(true));
        g.bench_function(label, |b| {
            b.iter(|| {
                rt.exec(move |ctx| {
                    let world = ctx.world();
                    let store = ResilientStore::make(ctx).unwrap();
                    let mut m = DistBlockMatrix::make(
                        ctx, 2048, 64, PLACES, 1, PLACES, 1, &world, false,
                    )
                    .unwrap();
                    m.init_with(ctx, |_, _, r0, _, rows, cols| {
                        BlockData::Dense(builder::random_dense(rows, cols, r0 as u64))
                    })
                    .unwrap();
                    let snap = m.make_snapshot(ctx, &store).unwrap();
                    // Restore over a smaller group (no kill: isolate restore
                    // cost from failure handling).
                    let smaller = world.without(&[world.place(world.len() - 1)]);
                    m.remake(ctx, &smaller, rebalance).unwrap();
                    m.restore_snapshot(ctx, &store, &snap).unwrap();
                    black_box(m.rows());
                })
                .unwrap();
            })
        });
        rt.shutdown();
    }
    g.finish();
}

/// Broadcast cost: `DupVector::sync` over the group.
fn bench_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("dup_sync");
    g.sample_size(20);
    let rt = Runtime::new(RuntimeConfig::new(PLACES).resilient(true));
    g.bench_function("dup_vector_100k", |b| {
        b.iter(|| {
            rt.exec(|ctx| {
                let world = ctx.world();
                let v = DupVector::make(ctx, 100_000, &world).unwrap();
                v.sync(ctx).unwrap();
                black_box(v.len());
            })
            .unwrap();
        })
    });
    rt.shutdown();
    g.finish();
}

criterion_group!(
    resilience,
    bench_finish_overhead,
    bench_snapshot,
    bench_restore_modes,
    bench_sync
);
criterion_main!(resilience);
