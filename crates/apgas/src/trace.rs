//! Structured tracing: per-place lock-free event rings, RAII spans, and a
//! Chrome `trace_event` exporter.
//!
//! The paper's evaluation is a cost decomposition — checkpoint vs. step time
//! (Table III), restore cost by mode (Figs 5–7), resilient-finish place-zero
//! overhead (Figs 2–4). Flat lifetime counters cannot attribute time to
//! those phases; this module can. Every instrumented operation emits
//! [`TraceEvent`]s (span begin/end, or an instant) into a fixed-capacity
//! ring owned by the place it ran at, and feeds a latency histogram in the
//! [`crate::metrics::MetricsRegistry`]. Three sinks read it back:
//!
//! 1. [`Tracer::chrome_json`] — a Chrome `trace_event` JSON document,
//!    loadable in `chrome://tracing` / Perfetto (one track per place);
//! 2. the metrics registry's [`report`](crate::metrics::MetricsRegistry::report)
//!    table (p50/p95/p99/max per span kind);
//! 3. the executor's per-iteration cost report (`gml-core`), built from
//!    counter deltas plus these spans.
//!
//! **Zero-cost when off.** Tracing is enabled per runtime, via
//! `RuntimeConfig::trace(true)` or `GML_TRACE=1`. When disabled, every
//! instrumentation point is one predictable branch on a plain `bool` —
//! no clock reads, no atomics, no allocation (benched in
//! `crates/bench/benches/trace_overhead.rs`). Compiling with
//! `--no-default-features` (dropping the `trace` feature) folds that bool
//! to a compile-time `false`.
//!
//! **Best-effort rings.** Writers claim a slot with one `fetch_add` and
//! publish through a per-slot sequence word (seqlock style); the ring never
//! blocks and overwrites the oldest events when full. Readers validate the
//! sequence word before and after copying a slot and drop torn slots, so a
//! drain is always consistent, merely possibly incomplete — the right trade
//! for instrumentation threaded through hot paths.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::metrics::MetricsRegistry;

/// What an instrumented operation is. Kinds are POD (`u8`) so events pack
/// into atomic words; [`SpanKind::name`] gives the dotted display name used
/// in trace files and the metrics report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// `Ctx::encode` — serializing a cross-place payload.
    Encode,
    /// `Ctx::decode` — deserializing a received payload.
    Decode,
    /// `Ctx::at` — a synchronous remote-execution round trip.
    At,
    /// `FinishScope::async_at` — an asynchronous task dispatch.
    AsyncAt,
    /// Resilient-finish spawn record: the synchronous round trip to place
    /// zero before a task may be sent (the paper's main overhead source).
    CtlSpawn,
    /// Resilient-finish termination record (fire-and-forget to place zero).
    CtlTerm,
    /// Resilient-finish wait registration + block until quiescence.
    CtlWait,
    /// `ResilientStore::save_pair` — owner insert plus backup transfer.
    StoreSave,
    /// `ResilientStore::fetch` — snapshot read (local, owner, or backup).
    StoreFetch,
    /// `ResilientStore::delete_snapshot` — collective old-snapshot cleanup.
    StoreDelete,
    /// A GML object writing its snapshot into the store.
    SnapshotObj,
    /// A GML object restoring itself from a snapshot.
    RestoreObj,
    /// One `ResilientIterativeApp::step` call driven by the executor.
    Step,
    /// One coordinated checkpoint (all registered objects + commit).
    Checkpoint,
    /// One restore attempt; the label names the effective `RestoreMode`.
    Restore,
    /// Fail-stop failure injection (instant).
    KillPlace,
    /// Place-zero failure detection: a `PlaceDied` ctl message (instant).
    PlaceDied,
    /// Elastic place creation (instant).
    SpawnPlace,
    /// One multi-chunk compute-pool job (`apgas::pool::run`); the numeric
    /// argument is the chunk count.
    PoolRun,
    /// `ResilientStore::save_batch` — owner inserts for a whole place plus
    /// one batched backup transfer; the numeric argument is the total
    /// payload bytes of the batch.
    StoreSaveBatch,
    /// One deferred checkpoint ship: a batched backup transfer executed in
    /// the background after the synchronous capture phase returned.
    CkptShip,
    /// The receiving-place body of a `Ctx::at` closure: what the remote
    /// place actually executed while the sender's [`SpanKind::At`] span was
    /// blocked on the round trip. Parented on the sender's `At` span.
    AtRemote,
    /// The receiving-place body of an `async_at` task. Parented on the
    /// sender's [`SpanKind::AsyncAt`] dispatch instant.
    AsyncTask,
    /// One re-execution of a task body by the task-resilience layer after a
    /// panic or timeout; the numeric argument is the attempt ordinal.
    TaskReplay,
    /// A majority vote over replica digests of a replicated task; the
    /// numeric argument is the number of replicas polled.
    TaskVote,
    /// Checkpoint codec encode of one place's batch (delta diff +
    /// compression); the numeric argument is the logical payload bytes in.
    CkptEncode,
    /// Checkpoint codec decode of one fetched entry (chain replay
    /// included); the numeric argument is the head frame's wire bytes.
    CkptDecode,
}

/// Number of span kinds (size of per-kind arrays).
pub const SPAN_KIND_COUNT: usize = 27;

impl SpanKind {
    /// Every kind, in discriminant order.
    pub const ALL: [SpanKind; SPAN_KIND_COUNT] = [
        SpanKind::Encode,
        SpanKind::Decode,
        SpanKind::At,
        SpanKind::AsyncAt,
        SpanKind::CtlSpawn,
        SpanKind::CtlTerm,
        SpanKind::CtlWait,
        SpanKind::StoreSave,
        SpanKind::StoreFetch,
        SpanKind::StoreDelete,
        SpanKind::SnapshotObj,
        SpanKind::RestoreObj,
        SpanKind::Step,
        SpanKind::Checkpoint,
        SpanKind::Restore,
        SpanKind::KillPlace,
        SpanKind::PlaceDied,
        SpanKind::SpawnPlace,
        SpanKind::PoolRun,
        SpanKind::StoreSaveBatch,
        SpanKind::CkptShip,
        SpanKind::AtRemote,
        SpanKind::AsyncTask,
        SpanKind::TaskReplay,
        SpanKind::TaskVote,
        SpanKind::CkptEncode,
        SpanKind::CkptDecode,
    ];

    /// Dotted display name (`"exec.restore"`, `"serial.encode"`, …).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Encode => "serial.encode",
            SpanKind::Decode => "serial.decode",
            SpanKind::At => "apgas.at",
            SpanKind::AsyncAt => "apgas.async_at",
            SpanKind::CtlSpawn => "finish.ctl_spawn",
            SpanKind::CtlTerm => "finish.ctl_term",
            SpanKind::CtlWait => "finish.ctl_wait",
            SpanKind::StoreSave => "store.save_pair",
            SpanKind::StoreFetch => "store.fetch",
            SpanKind::StoreDelete => "store.delete_snapshot",
            SpanKind::SnapshotObj => "object.snapshot",
            SpanKind::RestoreObj => "object.restore",
            SpanKind::Step => "exec.step",
            SpanKind::Checkpoint => "exec.checkpoint",
            SpanKind::Restore => "exec.restore",
            SpanKind::KillPlace => "place.kill",
            SpanKind::PlaceDied => "place.died",
            SpanKind::SpawnPlace => "place.spawn",
            SpanKind::PoolRun => "pool.run",
            SpanKind::StoreSaveBatch => "store.save_batch",
            SpanKind::CkptShip => "ckpt.ship",
            SpanKind::AtRemote => "apgas.at_remote",
            SpanKind::AsyncTask => "apgas.async_task",
            SpanKind::TaskReplay => "task.replay",
            SpanKind::TaskVote => "task.vote",
            SpanKind::CkptEncode => "ckpt.encode",
            SpanKind::CkptDecode => "ckpt.decode",
        }
    }

    fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

/// Event phase, Chrome-trace style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Span begin.
    Begin,
    /// Span end (carries the duration).
    End,
    /// A point event with no duration.
    Instant,
}

impl Phase {
    fn from_u8(v: u8) -> Option<Phase> {
        match v {
            0 => Some(Phase::Begin),
            1 => Some(Phase::End),
            2 => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// One decoded trace event, as returned by [`Tracer::events`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch (runtime start).
    pub t_nanos: u64,
    /// Span duration in nanoseconds (nonzero only for [`Phase::End`]).
    pub dur_nanos: u64,
    /// The place the event occurred at.
    pub place: u32,
    /// Begin / End / Instant.
    pub phase: Phase,
    /// What kind of operation this is.
    pub kind: SpanKind,
    /// Optional static label (e.g. the restore mode); `""` when unset.
    pub label: &'static str,
    /// Free argument: payload bytes for data-plane spans, an id or
    /// iteration number for control-plane spans.
    pub arg: u64,
    /// Process-unique identity of this span/instant (0 only for legacy or
    /// synthesized events). Begin and End of the same span share one id.
    pub span_id: u64,
    /// The causal parent's [`span_id`](Self::span_id): the enclosing span on
    /// the same thread, or — for a receiving-place span — the *sender's*
    /// span carried across the place crossing. 0 means "root".
    pub parent_id: u64,
}

// ---------------------------------------------------------------------------
// Span identity and causal context propagation.
// ---------------------------------------------------------------------------

/// Process-global span-id allocator. Ids are unique across every tracer,
/// place, and thread in the process; 0 is reserved for "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh, process-unique span id.
#[inline]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The innermost live span on this thread — the causal parent of any
    /// event this thread emits next. Crossing helpers ([`TraceCtx`])
    /// transplant it into the receiving task's thread.
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The current thread's innermost live span id (0 when outside every span).
#[inline]
pub fn current_span_id() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// The causal trace context carried across a place crossing: the sender-side
/// span the receiving place's work should be parented on, plus the place it
/// was captured at. This is the framed header the serialization plane ships
/// with `at`/`async_at`/ctl messages and store save/fetch traffic (see
/// `impl Serial for TraceCtx` in [`crate::serial`] for the wire format).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// The sender-side span id receiver spans adopt as their parent
    /// (0 = no causal parent / tracing off).
    pub parent: u64,
    /// The place the context was captured at.
    pub origin: u32,
}

impl TraceCtx {
    /// An empty context: no parent, origin place 0.
    pub const NONE: TraceCtx = TraceCtx { parent: 0, origin: 0 };

    /// Capture the current thread's causal context at `origin`. When the
    /// tracer is off this is a single branch returning [`TraceCtx::NONE`],
    /// so disabled runs capture (and later adopt) nothing.
    #[inline]
    pub fn capture(tracer: &Tracer, origin: u32) -> TraceCtx {
        if !tracer.is_on() {
            return TraceCtx::NONE;
        }
        TraceCtx { parent: current_span_id(), origin }
    }

    /// Install this context as the receiving thread's causal parent for the
    /// guard's lifetime; the previous parent is restored on drop. A `NONE`
    /// context installs nothing (zero TLS traffic on untraced runs).
    #[inline]
    pub fn adopt(self) -> AdoptGuard {
        if self.parent == 0 {
            return AdoptGuard { prev: None };
        }
        let prev = CURRENT_SPAN.with(|c| c.replace(self.parent));
        AdoptGuard { prev: Some(prev) }
    }
}

/// RAII guard for [`TraceCtx::adopt`]: restores the thread's previous causal
/// parent when dropped.
pub struct AdoptGuard {
    prev: Option<u64>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            CURRENT_SPAN.with(|c| c.set(prev));
        }
    }
}

// ---------------------------------------------------------------------------
// Label interning: &'static str ⇄ u16, lock-free.
// ---------------------------------------------------------------------------

const MAX_LABELS: usize = 64;

/// Interns `&'static str` labels to small ids so events stay POD. Fixed
/// capacity; when full, further labels degrade to the empty label rather
/// than block or allocate.
struct LabelTable {
    // Pointer + length of each interned &'static str. Length is published
    // before the pointer CAS so a reader that sees the pointer sees the
    // length too.
    ptrs: [AtomicUsize; MAX_LABELS],
    lens: [AtomicUsize; MAX_LABELS],
}

impl Default for LabelTable {
    fn default() -> Self {
        LabelTable {
            ptrs: std::array::from_fn(|_| AtomicUsize::new(0)),
            lens: std::array::from_fn(|_| AtomicUsize::new(0)),
        }
    }
}

impl LabelTable {
    /// Id for `label`; 0 is the empty label.
    fn intern(&self, label: &'static str) -> u16 {
        if label.is_empty() {
            return 0;
        }
        let ptr = label.as_ptr() as usize;
        for i in 0..MAX_LABELS {
            let cur = self.ptrs[i].load(Ordering::Acquire);
            if cur == ptr {
                return (i + 1) as u16;
            }
            if cur == 0 {
                self.lens[i].store(label.len(), Ordering::Release);
                match self.ptrs[i].compare_exchange(
                    0,
                    ptr,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return (i + 1) as u16,
                    Err(existing) if existing == ptr => return (i + 1) as u16,
                    Err(_) => continue, // someone else took the slot; next one
                }
            }
        }
        // Distinct &'static strs with equal content (cross-crate dedup
        // misses) or genuine overflow land here; drop the label.
        0
    }

    fn get(&self, id: u16) -> &'static str {
        if id == 0 || id as usize > MAX_LABELS {
            return "";
        }
        let i = id as usize - 1;
        let ptr = self.ptrs[i].load(Ordering::Acquire);
        if ptr == 0 {
            return "";
        }
        let len = self.lens[i].load(Ordering::Acquire);
        // SAFETY: (ptr, len) were stored from a live &'static str, with len
        // published before ptr; 'static data never moves or frees.
        unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len))
        }
    }
}

// ---------------------------------------------------------------------------
// The per-place event ring.
// ---------------------------------------------------------------------------

/// Slot sequence value meaning "never written".
const SEQ_EMPTY: u64 = u64::MAX;
/// OR-ed into the sequence while a writer owns the slot.
const SEQ_BUSY: u64 = 1 << 63;

struct Slot {
    seq: AtomicU64,
    // t_nanos, dur_nanos, meta (place<<32 | label<<16 | kind<<8 | phase),
    // arg, span_id, parent_id
    words: [AtomicU64; 6],
}

/// One packed ring record: `(t_nanos, dur_nanos, meta, arg, span_id,
/// parent_id)` — the drain-side twin of [`Slot::words`].
pub type PackedEvent = (u64, u64, u64, u64, u64, u64);

/// A fixed-capacity, lock-free, overwrite-oldest ring of packed events.
///
/// Writers never block and never allocate; readers ([`EventRing::drain`])
/// are best-effort and skip slots a concurrent writer is mid-update on.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of two,
    /// minimum 16).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(16);
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(SEQ_EMPTY),
                words: Default::default(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        crate::mem::charge(crate::mem::MemTag::TraceRing, cap * std::mem::size_of::<Slot>());
        EventRing { slots, mask: cap as u64 - 1, head: AtomicU64::new(0) }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl Drop for EventRing {
    fn drop(&mut self) {
        crate::mem::discharge(
            crate::mem::MemTag::TraceRing,
            self.slots.len() * std::mem::size_of::<Slot>(),
        );
    }
}

impl EventRing {

    /// Total events ever pushed (≥ what a drain can return once wrapped).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to ring wraparound so far: everything pushed beyond the
    /// retained window has been overwritten. Feeds the
    /// `gml_trace_dropped_total` Prometheus family and lets the
    /// critical-path analyzer flag drop-affected iterations as incomplete
    /// instead of reporting a bogus path.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Append one packed event, overwriting the oldest if full.
    #[inline]
    #[allow(clippy::too_many_arguments)] // packed-word fan-in, not an API
    pub fn push(&self, t_nanos: u64, dur_nanos: u64, meta: u64, arg: u64, span: u64, parent: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        slot.seq.store(ticket | SEQ_BUSY, Ordering::Release);
        slot.words[0].store(t_nanos, Ordering::Relaxed);
        slot.words[1].store(dur_nanos, Ordering::Relaxed);
        slot.words[2].store(meta, Ordering::Relaxed);
        slot.words[3].store(arg, Ordering::Relaxed);
        slot.words[4].store(span, Ordering::Relaxed);
        slot.words[5].store(parent, Ordering::Release);
        slot.seq.store(ticket, Ordering::Release);
    }

    /// Copy out the retained window, oldest first. Torn slots (concurrently
    /// overwritten during the copy) are skipped.
    pub fn drain(&self) -> Vec<PackedEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != ticket {
                continue;
            }
            let t = slot.words[0].load(Ordering::Acquire);
            let d = slot.words[1].load(Ordering::Acquire);
            let m = slot.words[2].load(Ordering::Acquire);
            let a = slot.words[3].load(Ordering::Acquire);
            let s = slot.words[4].load(Ordering::Acquire);
            let p = slot.words[5].load(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) == ticket {
                out.push((t, d, m, a, s, p));
            }
        }
        out
    }
}

#[inline]
fn pack_meta(place: u32, label: u16, kind: SpanKind, phase: Phase) -> u64 {
    ((place as u64) << 32) | ((label as u64) << 16) | ((kind as u64) << 8) | phase as u64
}

fn unpack_meta(meta: u64) -> (u32, u16, Option<SpanKind>, Option<Phase>) {
    (
        (meta >> 32) as u32,
        (meta >> 16) as u16,
        SpanKind::from_u8((meta >> 8) as u8),
        Phase::from_u8(meta as u8),
    )
}

// ---------------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------------

/// Default per-place ring capacity (events), overridable via `GML_TRACE_BUF`.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Whether tracing support is compiled in at all. With the `trace` cargo
/// feature disabled, every instrumentation check folds to constant `false`
/// and the instrumentation is dead-code-eliminated.
#[inline(always)]
pub fn compiled_in() -> bool {
    cfg!(feature = "trace")
}

/// The per-runtime trace collector: one [`EventRing`] per place, a label
/// interner, a wall-clock epoch, and the [`MetricsRegistry`].
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    ring_capacity: usize,
    rings: RwLock<Vec<Arc<EventRing>>>,
    labels: LabelTable,
    metrics: MetricsRegistry,
    /// Flow halves dropped at export time: drawn events whose causal parent
    /// was overwritten in a ring before export, so the viewer would have
    /// shown an arrow from nowhere. Counted per [`chrome_json`] call.
    ///
    /// [`chrome_json`]: Tracer::chrome_json
    flow_dropped: AtomicU64,
}

impl Tracer {
    /// A disabled tracer: every instrumentation call is a single branch.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            epoch: Instant::now(),
            ring_capacity: 16,
            rings: RwLock::new(Vec::new()),
            labels: LabelTable::default(),
            metrics: MetricsRegistry::new(),
            flow_dropped: AtomicU64::new(0),
        }
    }

    /// An enabled tracer with the given per-place ring capacity.
    pub fn enabled(ring_capacity: usize) -> Self {
        Tracer { enabled: true, ring_capacity, ..Tracer::disabled() }
    }

    /// Build from the environment: enabled iff `GML_TRACE` is truthy
    /// (`1`/`true`/`on`/`yes`), ring capacity from `GML_TRACE_BUF`.
    pub fn from_env() -> Self {
        if env_truthy("GML_TRACE") {
            // Warns on stderr (naming the variable and the default) when the
            // value is present but unparsable, instead of silently ignoring
            // a typo like GML_TRACE_BUF=64k.
            let cap = crate::monitor::env_parsed("GML_TRACE_BUF", DEFAULT_RING_CAPACITY);
            Tracer::enabled(cap)
        } else {
            Tracer::disabled()
        }
    }

    /// Is this tracer collecting events? Inlined to a constant `false` when
    /// the `trace` feature is off.
    #[inline(always)]
    pub fn is_on(&self) -> bool {
        compiled_in() && self.enabled
    }

    /// Latency histograms fed by every ended span.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Nanoseconds since the tracer's epoch.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Grow the per-place ring list to cover `n` places. Called by the
    /// runtime whenever a place starts (including elastic growth).
    pub fn ensure_place(&self, n: usize) {
        if !self.is_on() {
            return;
        }
        let mut rings = self.rings.write();
        while rings.len() < n {
            rings.push(Arc::new(EventRing::new(self.ring_capacity)));
        }
    }

    fn ring(&self, place: u32) -> Option<Arc<EventRing>> {
        self.rings.read().get(place as usize).cloned()
    }

    /// Per-place counts of events lost to ring wraparound (index = place).
    pub fn dropped(&self) -> Vec<u64> {
        self.rings.read().iter().map(|r| r.dropped()).collect()
    }

    /// Total events lost to ring wraparound across all places.
    pub fn dropped_total(&self) -> u64 {
        self.dropped().iter().sum()
    }

    /// Flow halves dropped at Chrome-export time because the matching start
    /// span had been overwritten in a ring (cumulative across exports).
    /// Without this suppression the export would draw arrows from nowhere.
    pub fn flow_dropped(&self) -> u64 {
        self.flow_dropped.load(Ordering::Relaxed)
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // internal POD fan-in, not an API
    fn emit(
        &self,
        place: u32,
        phase: Phase,
        kind: SpanKind,
        label: u16,
        arg: u64,
        t: u64,
        dur: u64,
        span: u64,
        parent: u64,
    ) {
        if let Some(ring) = self.ring(place) {
            ring.push(t, dur, pack_meta(place, label, kind, phase), arg, span, parent);
        }
    }

    /// Record an instant event (no duration). Returns the instant's
    /// process-unique span id (0 when tracing is off) so a dispatch site can
    /// hand it to the receiving place as the causal parent.
    #[inline]
    pub fn instant(&self, place: u32, kind: SpanKind, arg: u64) -> u64 {
        if !self.is_on() {
            return 0;
        }
        let span = next_span_id();
        self.emit(place, Phase::Instant, kind, 0, arg, self.now_nanos(), 0, span, current_span_id());
        span
    }

    /// Record an instant event with a static label. Returns the instant's
    /// span id (0 when tracing is off), as [`instant`](Self::instant) does.
    #[inline]
    pub fn instant_labeled(&self, place: u32, kind: SpanKind, label: &'static str, arg: u64) -> u64 {
        if !self.is_on() {
            return 0;
        }
        let id = self.labels.intern(label);
        let span = next_span_id();
        self.emit(place, Phase::Instant, kind, id, arg, self.now_nanos(), 0, span, current_span_id());
        span
    }

    /// Begin a span; the returned guard emits the end event (and feeds the
    /// kind's histogram) when dropped. When tracing is off this is a single
    /// branch: no clock read, no ring write.
    #[inline]
    pub fn span(&self, place: u32, kind: SpanKind, arg: u64) -> SpanGuard<'_> {
        self.span_labeled(place, kind, "", arg)
    }

    /// Begin a labeled span (e.g. the restore mode name).
    #[inline]
    pub fn span_labeled(
        &self,
        place: u32,
        kind: SpanKind,
        label: &'static str,
        arg: u64,
    ) -> SpanGuard<'_> {
        if !self.is_on() {
            return SpanGuard {
                tracer: None,
                place,
                kind,
                label: 0,
                arg,
                t0: 0,
                span_id: 0,
                parent_id: 0,
                prev: 0,
            };
        }
        let label = self.labels.intern(label);
        let t0 = self.now_nanos();
        let span_id = next_span_id();
        // This span becomes the thread's innermost live span: its children
        // (including work adopted at other places) parent on it.
        let prev = CURRENT_SPAN.with(|c| c.replace(span_id));
        self.emit(place, Phase::Begin, kind, label, arg, t0, 0, span_id, prev);
        SpanGuard { tracer: Some(self), place, kind, label, arg, t0, span_id, parent_id: prev, prev }
    }

    /// Record a complete span whose duration was measured externally (the
    /// codec paths time themselves even with tracing off, for the stats
    /// counters). Emits begin/end retroactively and feeds the histogram.
    #[inline]
    pub fn complete(&self, place: u32, kind: SpanKind, arg: u64, dur: Duration) {
        if !self.is_on() {
            return;
        }
        let dur_nanos = dur.as_nanos() as u64;
        let end = self.now_nanos();
        let begin = end.saturating_sub(dur_nanos);
        let span = next_span_id();
        let parent = current_span_id();
        self.emit(place, Phase::Begin, kind, 0, arg, begin, 0, span, parent);
        self.emit(place, Phase::End, kind, 0, arg, end, dur_nanos, span, parent);
        self.metrics.kind(kind).record(dur_nanos);
    }

    /// Decode and merge every place's retained events, ordered by time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<EventRing>> = self.rings.read().clone();
        let mut out = Vec::new();
        for ring in rings {
            for (t, d, m, a, s, p) in ring.drain() {
                let (place, label, kind, phase) = unpack_meta(m);
                if let (Some(kind), Some(phase)) = (kind, phase) {
                    out.push(TraceEvent {
                        t_nanos: t,
                        dur_nanos: d,
                        place,
                        phase,
                        kind,
                        label: self.labels.get(label),
                        arg: a,
                        span_id: s,
                        parent_id: p,
                    });
                }
            }
        }
        out.sort_by_key(|e| e.t_nanos);
        out
    }

    /// Export the retained events as a Chrome `trace_event` JSON document
    /// (one thread track per place; span ends become complete `"X"` events
    /// so rendering is robust to interleaved same-place spans). Cross-place
    /// parent links become `flow` events (`"s"` at the sender span, `"f"`
    /// with `"bp":"e"` at the receiver span), so the viewer draws an arrow
    /// from every `at`/`async_at` dispatch to the work it caused.
    pub fn chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let places: std::collections::BTreeSet<u32> =
            events.iter().map(|e| e.place).collect();
        let mut first = true;
        for p in places {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"place {p}\"}}}}"
            ));
        }
        // Span id → (place, begin ts) of the *drawn* event (End slices and
        // instants), for resolving cross-place flow arrows. `known` also
        // remembers Begin-only (still-open) spans: a parent found there was
        // not lost, merely unfinished, so its flows are not "dropped".
        let mut drawn: std::collections::HashMap<u64, (u32, u64)> = std::collections::HashMap::new();
        let known: std::collections::HashSet<u64> = events.iter().map(|e| e.span_id).collect();
        for e in &events {
            match e.phase {
                Phase::End => {
                    drawn.insert(e.span_id, (e.place, e.t_nanos.saturating_sub(e.dur_nanos)));
                }
                Phase::Instant => {
                    drawn.entry(e.span_id).or_insert((e.place, e.t_nanos));
                }
                Phase::Begin => {}
            }
        }
        for e in &events {
            let (ph, ts, dur) = match e.phase {
                // Begin events are kept in the ring for programmatic
                // matching; the End event carries everything the viewer
                // needs as a complete ("X") slice.
                Phase::Begin => continue,
                Phase::End => ("X", e.t_nanos.saturating_sub(e.dur_nanos), Some(e.dur_nanos)),
                Phase::Instant => ("i", e.t_nanos, None),
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":0,\"tid\":{}",
                e.kind.name(),
                ph,
                ts as f64 / 1e3,
                e.place
            ));
            if let Some(d) = dur {
                out.push_str(&format!(",\"dur\":{:.3}", d as f64 / 1e3));
            }
            if e.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(
                ",\"args\":{{\"arg\":{},\"label\":\"{}\",\"span\":{},\"parent\":{}}}}}",
                e.arg,
                escape_json(e.label),
                e.span_id,
                e.parent_id,
            ));
            // Cross-place causality: if this drawn event's parent was drawn
            // at another place, emit a flow pair (id = the child span id)
            // linking sender → receiver. A parent absent from the drained
            // events entirely was overwritten in its ring — emitting the
            // finish half alone would draw an arrow from nowhere, so the
            // flow is dropped and counted instead.
            if e.parent_id != 0 {
                match drawn.get(&e.parent_id) {
                    Some(&(pplace, pts)) if pplace != e.place => {
                        out.push_str(&format!(
                            ",{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\
                             \"ts\":{:.3},\"pid\":0,\"tid\":{}}}",
                            e.kind.name(),
                            e.span_id,
                            pts as f64 / 1e3,
                            pplace
                        ));
                        out.push_str(&format!(
                            ",{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                             \"id\":{},\"ts\":{:.3},\"pid\":0,\"tid\":{}}}",
                            e.kind.name(),
                            e.span_id,
                            ts as f64 / 1e3,
                            e.place
                        ));
                    }
                    Some(_) => {} // same-place nesting: no arrow to draw
                    None if !known.contains(&e.parent_id) => {
                        self.flow_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {} // parent span still open (Begin retained): not lost
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Count the cross-place flow pairs ([`"ph":"s"`] starts) a Chrome export
/// holds. `trace_smoke` uses this to assert a multi-place run's export links
/// sender spans to receiver spans.
pub fn count_flow_events(chrome_json: &str) -> usize {
    chrome_json.matches("\"ph\":\"s\"").count()
}

/// Prepare a trace export destination: create any missing parent
/// directories and probe writability, warning on stderr (in the loud
/// [`env_parsed`](crate::monitor::env_parsed) style) when the path cannot
/// be used. Returns whether an export to `path` can be expected to
/// succeed. Called at runtime startup so a bad `GML_TRACE_OUT` is
/// reported *before* the run, not after its data is already collected.
pub fn prepare_out_path(path: &std::path::Path) -> bool {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!(
                    "GML_TRACE_OUT: cannot create parent directory {}: {e}; \
                     trace export will be skipped",
                    parent.display()
                );
                return false;
            }
        }
    }
    // Probe writability without clobbering existing content; the export
    // itself rewrites the file from scratch.
    match std::fs::OpenOptions::new().append(true).create(true).open(path) {
        Ok(_) => true,
        Err(e) => {
            eprintln!(
                "GML_TRACE_OUT: {} is not writable: {e}; trace export will be skipped",
                path.display()
            );
            false
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn env_truthy(name: &str) -> bool {
    matches!(
        std::env::var(name).unwrap_or_default().to_ascii_lowercase().as_str(),
        "1" | "true" | "on" | "yes"
    )
}

/// RAII span: emits the end event and feeds the kind's latency histogram on
/// drop. Obtained from [`Tracer::span`] / [`Tracer::span_labeled`]; inert
/// (and free) when tracing is off.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    place: u32,
    kind: SpanKind,
    label: u16,
    arg: u64,
    t0: u64,
    span_id: u64,
    parent_id: u64,
    /// The thread's previous innermost span, restored on drop.
    prev: u64,
}

impl SpanGuard<'_> {
    /// Update the span's argument (e.g. bytes moved, discovered mid-span).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }

    /// This span's process-unique id (0 when tracing is off). While the
    /// guard lives, this is also the thread's current span — the causal
    /// parent a [`TraceCtx::capture`] inside the span will carry.
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tr) = self.tracer {
            let t1 = tr.now_nanos();
            let dur = t1.saturating_sub(self.t0);
            tr.emit(
                self.place,
                Phase::End,
                self.kind,
                self.label,
                self.arg,
                t1,
                dur,
                self.span_id,
                self.parent_id,
            );
            tr.metrics.kind(self.kind).record(dur);
            CURRENT_SPAN.with(|c| c.set(self.prev));
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON validation (no external JSON crate in this workspace).
// ---------------------------------------------------------------------------

/// Validate that `s` is a syntactically well-formed JSON document. Used by
/// the CI trace smoke test; intentionally strict and dependency-free.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(())
}

/// Validate a Chrome trace document and return how many events its
/// `traceEvents` array holds. Errors if the JSON is malformed, the key is
/// missing, or the array is empty.
pub fn validate_chrome_trace(s: &str) -> Result<usize, String> {
    validate_json(s)?;
    if !s.contains("\"traceEvents\"") {
        return Err("no traceEvents key".into());
    }
    // The document was just validated, so counting phase markers is an
    // accurate event count (every event object has exactly one "ph" key).
    let n = s.matches("\"ph\":").count();
    if n == 0 {
        return Err("traceEvents is empty".into());
    }
    Ok(n)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, b"true"),
        Some(b'f') => parse_lit(b, i, b"false"),
        Some(b'n') => parse_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        Some(c) => Err(format!("unexpected byte {c:?} at {i:?}")),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i:?}"));
        }
        parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i:?}"));
        }
        *i += 1;
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i:?}")),
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i:?}")),
        }
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i:?}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '"'
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 2; // escape + escaped byte (unicode escapes advance below)
                if b.get(*i - 1) == Some(&b'u') {
                    *i += 4;
                }
            }
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
        *i += 1;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
            *i += 1;
        }
        while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
    }
    if *i == start || (*i == start + 1 && b[start] == b'-') {
        return Err(format!("bad number at byte {start}"));
    }
    Ok(())
}

// The per-iteration critical-path analyzer lives in its own file but is
// addressed as `trace::critical_path`, mirroring how it consumes this
// module's events.
#[path = "critical_path.rs"]
pub mod critical_path;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_basic_push_drain() {
        let r = EventRing::new(16);
        for k in 0..5u64 {
            r.push(k, 0, pack_meta(0, 0, SpanKind::Encode, Phase::Instant), k * 10, k + 1, 0);
        }
        let got = r.drain();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[4].3, 40);
        assert_eq!(got[4].4, 5, "span id survives the round trip");
        assert_eq!(r.dropped(), 0, "nothing wrapped yet");
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let r = EventRing::new(16); // exact power of two
        assert_eq!(r.capacity(), 16);
        for k in 0..40u64 {
            r.push(k, 0, pack_meta(0, 0, SpanKind::At, Phase::Instant), k, 0, 0);
        }
        assert_eq!(r.pushed(), 40);
        assert_eq!(r.dropped(), 24, "wrap loss is counted, not silent");
        let got = r.drain();
        // The newest `capacity` events survive, oldest first.
        assert_eq!(got.len(), 16);
        assert_eq!(got.first().unwrap().0, 24);
        assert_eq!(got.last().unwrap().0, 39);
        // And they are contiguous.
        for (idx, e) in got.iter().enumerate() {
            assert_eq!(e.0, 24 + idx as u64);
        }
    }

    #[test]
    fn ring_capacity_rounds_up() {
        assert_eq!(EventRing::new(0).capacity(), 16);
        assert_eq!(EventRing::new(17).capacity(), 32);
    }

    #[test]
    fn ring_concurrent_writers_never_tear() {
        let r = Arc::new(EventRing::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for k in 0..1000u64 {
                    // Writer-tagged payload: arg == t_nanos == span_id lets
                    // the reader verify slot integrity across all words.
                    let v = t * 1_000_000 + k;
                    r.push(v, 0, pack_meta(t as u32, 0, SpanKind::At, Phase::Instant), v, v, v);
                }
            }));
        }
        for _ in 0..50 {
            for e in r.drain() {
                assert_eq!(e.0, e.3, "torn slot surfaced to a reader");
                assert_eq!(e.0, e.4, "torn span word surfaced to a reader");
                assert_eq!(e.0, e.5, "torn parent word surfaced to a reader");
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        for e in r.drain() {
            assert_eq!(e.0, e.3);
            assert_eq!(e.0, e.4);
        }
    }

    #[test]
    fn label_interning_round_trips() {
        let t = LabelTable::default();
        let a = t.intern("shrink");
        let b = t.intern("replace_redundant");
        assert_ne!(a, b);
        assert_eq!(t.intern("shrink"), a, "stable on re-intern");
        assert_eq!(t.get(a), "shrink");
        assert_eq!(t.get(b), "replace_redundant");
        assert_eq!(t.get(0), "");
        assert_eq!(t.intern(""), 0);
    }

    #[test]
    fn span_guard_emits_matched_pair_and_feeds_histogram() {
        let tr = Tracer::enabled(256);
        tr.ensure_place(2);
        {
            let _g = tr.span_labeled(1, SpanKind::Restore, "shrink", 7);
            std::thread::sleep(Duration::from_millis(1));
        }
        let ev = tr.events();
        let begins: Vec<_> = ev
            .iter()
            .filter(|e| e.kind == SpanKind::Restore && e.phase == Phase::Begin)
            .collect();
        let ends: Vec<_> = ev
            .iter()
            .filter(|e| e.kind == SpanKind::Restore && e.phase == Phase::End)
            .collect();
        assert_eq!(begins.len(), 1);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].label, "shrink");
        assert_eq!(ends[0].place, 1);
        assert_eq!(ends[0].arg, 7);
        assert!(ends[0].dur_nanos >= 1_000_000, "slept ≥ 1ms");
        assert_eq!(tr.metrics().kind(SpanKind::Restore).snapshot().count, 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::disabled();
        tr.ensure_place(4);
        {
            let _g = tr.span(0, SpanKind::Step, 0);
        }
        tr.instant(0, SpanKind::KillPlace, 1);
        tr.complete(0, SpanKind::Encode, 10, Duration::from_micros(5));
        assert!(tr.events().is_empty());
        assert_eq!(tr.metrics().kind(SpanKind::Step).snapshot().count, 0);
    }

    #[test]
    fn chrome_json_is_valid_and_nonempty() {
        let tr = Tracer::enabled(256);
        tr.ensure_place(2);
        tr.instant(0, SpanKind::KillPlace, 1);
        {
            let _g = tr.span_labeled(1, SpanKind::Restore, "shrink_rebalance", 3);
        }
        tr.complete(0, SpanKind::Encode, 4096, Duration::from_micros(12));
        let json = tr.chrome_json();
        let n = validate_chrome_trace(&json).expect("valid chrome trace");
        // 1 instant + 2 X slices + 2 thread-name metadata events.
        assert_eq!(n, 5);
        assert!(json.contains("\"exec.restore\""));
        assert!(json.contains("shrink_rebalance"));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e4,\"x\\\"y\",true,null]}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("{'a':1}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
    }

    #[test]
    fn span_ids_are_unique_and_nest_as_parents() {
        let tr = Tracer::enabled(256);
        tr.ensure_place(1);
        let (outer_id, inner_id);
        {
            let outer = tr.span(0, SpanKind::Step, 1);
            outer_id = outer.id();
            assert_ne!(outer_id, 0);
            assert_eq!(current_span_id(), outer_id, "guard installs itself as current");
            {
                let inner = tr.span(0, SpanKind::Checkpoint, 2);
                inner_id = inner.id();
                assert_ne!(inner_id, outer_id);
                assert_eq!(current_span_id(), inner_id);
            }
            assert_eq!(current_span_id(), outer_id, "inner drop restores the parent");
        }
        assert_eq!(current_span_id(), 0, "outer drop restores the root");
        let ev = tr.events();
        let inner_end = ev
            .iter()
            .find(|e| e.kind == SpanKind::Checkpoint && e.phase == Phase::End)
            .unwrap();
        assert_eq!(inner_end.span_id, inner_id);
        assert_eq!(inner_end.parent_id, outer_id, "nesting is recorded as parentage");
        let outer_end =
            ev.iter().find(|e| e.kind == SpanKind::Step && e.phase == Phase::End).unwrap();
        assert_eq!(outer_end.parent_id, 0, "top-level span is a root");
    }

    #[test]
    fn trace_ctx_carries_parent_across_threads() {
        let tr = Arc::new(Tracer::enabled(256));
        tr.ensure_place(2);
        let ctx = {
            let _g = tr.span(0, SpanKind::At, 9);
            TraceCtx::capture(&tr, 0)
        };
        assert_ne!(ctx.parent, 0);
        // Simulate the receiving place's dispatcher thread adopting the
        // context before running the task body.
        let tr2 = Arc::clone(&tr);
        std::thread::spawn(move || {
            let _adopt = ctx.adopt();
            let _g = tr2.span(1, SpanKind::AtRemote, 0);
        })
        .join()
        .unwrap();
        let ev = tr.events();
        let remote =
            ev.iter().find(|e| e.kind == SpanKind::AtRemote && e.phase == Phase::End).unwrap();
        assert_eq!(remote.parent_id, ctx.parent, "receiver span parents on the sender span");
        assert_eq!(current_span_id(), 0, "adoption never leaks into other threads");
    }

    #[test]
    fn disabled_tracer_captures_no_context() {
        let tr = Tracer::disabled();
        let ctx = TraceCtx::capture(&tr, 3);
        assert_eq!(ctx, TraceCtx::NONE);
        let _adopt = ctx.adopt(); // must be inert
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn chrome_json_links_cross_place_spans_with_flow_events() {
        let tr = Arc::new(Tracer::enabled(256));
        tr.ensure_place(2);
        let ctx = {
            let _g = tr.span(0, SpanKind::At, 0);
            TraceCtx::capture(&tr, 0)
        };
        let tr2 = Arc::clone(&tr);
        std::thread::spawn(move || {
            let _adopt = ctx.adopt();
            let _g = tr2.span(1, SpanKind::AtRemote, 0);
        })
        .join()
        .unwrap();
        let json = tr.chrome_json();
        validate_chrome_trace(&json).expect("flow-bearing export stays valid JSON");
        assert_eq!(count_flow_events(&json), 1, "one cross-place edge, one flow pair");
        assert!(json.contains("\"ph\":\"f\""), "flow finish present");
        assert!(json.contains("\"bp\":\"e\""), "flow binds to the enclosing slice");
        // Same-place nesting must NOT produce flows.
        let tr3 = Tracer::enabled(256);
        tr3.ensure_place(1);
        {
            let _a = tr3.span(0, SpanKind::Step, 0);
            let _b = tr3.span(0, SpanKind::Checkpoint, 0);
        }
        assert_eq!(count_flow_events(&tr3.chrome_json()), 0);
    }

    #[test]
    fn tracer_reports_per_place_drops() {
        let tr = Tracer::enabled(16);
        tr.ensure_place(2);
        for i in 0..40 {
            tr.instant(0, SpanKind::At, i);
        }
        tr.instant(1, SpanKind::At, 0);
        let dropped = tr.dropped();
        assert_eq!(dropped.len(), 2);
        assert_eq!(dropped[0], 24, "place 0 wrapped");
        assert_eq!(dropped[1], 0, "place 1 did not");
        assert_eq!(tr.dropped_total(), 24);
    }

    #[test]
    fn prepare_out_path_creates_parents_and_rejects_directories() {
        let base = std::env::temp_dir().join(format!(
            "gml_trace_out_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let nested = base.join("a/b/c/trace.json");
        assert!(prepare_out_path(&nested), "missing parents should be created");
        assert!(nested.parent().unwrap().is_dir());
        // A directory at the target path is not a writable file.
        assert!(!prepare_out_path(&base.join("a/b")));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn from_env_defaults_off() {
        // The test runner does not set GML_TRACE; default must be disabled
        // (acceptance criterion: zero impact when unset).
        if std::env::var("GML_TRACE").is_err() {
            assert!(!Tracer::from_env().is_on());
        }
    }
}
