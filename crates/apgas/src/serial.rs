//! Byte-level serialization for cross-place payloads.
//!
//! In the real system a place is an OS process, so every matrix block or
//! vector segment that crosses a place boundary is serialized onto the wire.
//! The simulation keeps that cost honest: the GML layers move numeric data
//! between places exclusively as [`bytes::Bytes`] buffers produced by this
//! codec, never as shared references. Snapshot/restore costs in the paper's
//! Table III and Figs 5–7 are dominated by exactly these copies.
//!
//! The format is a private little-endian stream; it is not a stable
//! interchange format and both ends are always the same binary, so decode
//! errors are programming errors and panic.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Types that can be written to / read from a cross-place byte stream.
pub trait Serial: Sized {
    /// Append this value to `buf`.
    fn write(&self, buf: &mut BytesMut);
    /// Read one value from the front of `buf`.
    fn read(buf: &mut Bytes) -> Self;
    /// Exact encoded size in bytes, used to pre-reserve buffers.
    fn byte_len(&self) -> usize;

    /// Serialize a single value into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.byte_len());
        self.write(&mut buf);
        buf.freeze()
    }

    /// Deserialize a single value, asserting the buffer is fully consumed.
    fn from_bytes(bytes: Bytes) -> Self {
        let mut buf = bytes;
        let v = Self::read(&mut buf);
        debug_assert!(buf.is_empty(), "trailing bytes after deserialization");
        v
    }
}

macro_rules! impl_serial_primitive {
    ($t:ty, $put:ident, $get:ident, $len:expr) => {
        impl Serial for $t {
            #[inline]
            fn write(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            #[inline]
            fn read(buf: &mut Bytes) -> Self {
                buf.$get()
            }
            #[inline]
            fn byte_len(&self) -> usize {
                $len
            }
        }
    };
}

impl_serial_primitive!(u8, put_u8, get_u8, 1);
impl_serial_primitive!(u16, put_u16_le, get_u16_le, 2);
impl_serial_primitive!(u32, put_u32_le, get_u32_le, 4);
impl_serial_primitive!(u64, put_u64_le, get_u64_le, 8);
impl_serial_primitive!(i64, put_i64_le, get_i64_le, 8);
impl_serial_primitive!(f64, put_f64_le, get_f64_le, 8);

impl Serial for usize {
    #[inline]
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    #[inline]
    fn read(buf: &mut Bytes) -> Self {
        buf.get_u64_le() as usize
    }
    #[inline]
    fn byte_len(&self) -> usize {
        8
    }
}

impl Serial for bool {
    #[inline]
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    #[inline]
    fn read(buf: &mut Bytes) -> Self {
        buf.get_u8() != 0
    }
    #[inline]
    fn byte_len(&self) -> usize {
        1
    }
}

impl Serial for String {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn read(buf: &mut Bytes) -> Self {
        let n = buf.get_u64_le() as usize;
        let raw = buf.split_to(n);
        String::from_utf8(raw.to_vec()).expect("valid utf-8 in serial stream")
    }
    fn byte_len(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Serial> Serial for Vec<T> {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for v in self {
            v.write(buf);
        }
    }
    fn read(buf: &mut Bytes) -> Self {
        let n = buf.get_u64_le() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::read(buf));
        }
        out
    }
    fn byte_len(&self) -> usize {
        8 + self.iter().map(Serial::byte_len).sum::<usize>()
    }
}

impl<T: Serial> Serial for Option<T> {
    fn write(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.write(buf);
            }
        }
    }
    fn read(buf: &mut Bytes) -> Self {
        match buf.get_u8() {
            0 => None,
            _ => Some(T::read(buf)),
        }
    }
    fn byte_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Serial::byte_len)
    }
}

impl<A: Serial, B: Serial> Serial for (A, B) {
    fn write(&self, buf: &mut BytesMut) {
        self.0.write(buf);
        self.1.write(buf);
    }
    fn read(buf: &mut Bytes) -> Self {
        let a = A::read(buf);
        let b = B::read(buf);
        (a, b)
    }
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
}

impl<A: Serial, B: Serial, C: Serial> Serial for (A, B, C) {
    fn write(&self, buf: &mut BytesMut) {
        self.0.write(buf);
        self.1.write(buf);
        self.2.write(buf);
    }
    fn read(buf: &mut Bytes) -> Self {
        let a = A::read(buf);
        let b = B::read(buf);
        let c = C::read(buf);
        (a, b, c)
    }
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len() + self.2.byte_len()
    }
}

/// Append a `&[f64]` (length-prefixed) without building a `Vec` first.
pub fn write_f64_slice(data: &[f64], buf: &mut BytesMut) {
    buf.reserve(8 + 8 * data.len());
    buf.put_u64_le(data.len() as u64);
    for v in data {
        buf.put_f64_le(*v);
    }
}

/// Read a length-prefixed `f64` sequence into a `Vec`.
pub fn read_f64_vec(buf: &mut Bytes) -> Vec<f64> {
    let n = buf.get_u64_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f64_le());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serial + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.byte_len(), "byte_len must match encoding");
        let back = T::from_bytes(bytes);
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(65535u16);
        round_trip(123456789u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(std::f64::consts::PI);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip(false);
        round_trip(usize::MAX);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let bytes = f64::NAN.to_bytes();
        let back = f64::from_bytes(bytes);
        assert!(back.is_nan());
    }

    #[test]
    fn strings_and_containers() {
        round_trip(String::from(""));
        round_trip(String::from("résilience ✓"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<f64>::new());
        round_trip(vec![vec![1u8], vec![], vec![2, 3]]);
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip((1u32, 2.5f64));
        round_trip((1u32, String::from("x"), vec![9u8]));
    }

    #[test]
    fn f64_slice_helpers_match_vec_encoding() {
        let data = vec![1.0, -2.5, 3.75];
        let mut a = BytesMut::new();
        write_f64_slice(&data, &mut a);
        let mut b = BytesMut::new();
        data.write(&mut b);
        assert_eq!(a.freeze(), b.freeze());
        let mut buf = {
            let mut m = BytesMut::new();
            write_f64_slice(&data, &mut m);
            m.freeze()
        };
        assert_eq!(read_f64_vec(&mut buf), data);
        assert!(buf.is_empty());
    }

    #[test]
    fn sequential_stream() {
        let mut buf = BytesMut::new();
        42u32.write(&mut buf);
        String::from("hi").write(&mut buf);
        vec![1.0f64, 2.0].write(&mut buf);
        let mut r = buf.freeze();
        assert_eq!(u32::read(&mut r), 42);
        assert_eq!(String::read(&mut r), "hi");
        assert_eq!(Vec::<f64>::read(&mut r), vec![1.0, 2.0]);
        assert!(r.is_empty());
    }
}
