//! Stress and lifecycle tests for the APGAS runtime as a black box:
//! many concurrent finishes, interleaved failures, place-local storage
//! lifecycles, and repeated runtime construction/teardown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use apgas::prelude::*;
use apgas::runtime::Runtime;

#[test]
fn deep_nesting_of_finish_and_at() {
    Runtime::run(RuntimeConfig::new(4).resilient(true), |ctx| {
        // finish { at { finish { async_at } } } three levels deep.
        let total = Arc::new(AtomicU64::new(0));
        ctx.finish(|fs| {
            for p in ctx.world().iter() {
                let total = Arc::clone(&total);
                fs.async_at(p, move |ctx| {
                    let next = Place::new((ctx.here().id() + 1) % 4);
                    let inner_total = Arc::clone(&total);
                    ctx.at(next, move |ctx| {
                        ctx.finish(|fs2| {
                            for q in ctx.world().iter() {
                                let t = Arc::clone(&inner_total);
                                fs2.async_at(q, move |_| {
                                    t.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        })
                        .unwrap();
                    })
                    .unwrap();
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 16);
    })
    .unwrap();
}

#[test]
fn hundreds_of_sequential_finishes() {
    Runtime::run(RuntimeConfig::new(3).resilient(true), |ctx| {
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            ctx.finish(|fs| {
                for p in ctx.world().iter() {
                    let total = Arc::clone(&total);
                    fs.async_at(p, move |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 600);
        // Every one of the 200 finishes retired its registry record.
        assert_eq!(ctx.stats().ctl_total(), 200 * (3 + 3 + 1));
    })
    .unwrap();
}

#[test]
fn concurrent_finishes_from_different_places() {
    Runtime::run(RuntimeConfig::new(4).resilient(true), |ctx| {
        let total = Arc::new(AtomicU64::new(0));
        ctx.finish(|fs| {
            for p in ctx.world().iter() {
                let total = Arc::clone(&total);
                fs.async_at(p, move |ctx| {
                    // Each place runs its own loop of finishes concurrently
                    // with the others, all funneling through place zero.
                    for _ in 0..25 {
                        let t = Arc::clone(&total);
                        ctx.finish(|fs2| {
                            for q in ctx.world().iter() {
                                let t = Arc::clone(&t);
                                fs2.async_at(q, move |_| {
                                    t.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 4);
    })
    .unwrap();
}

#[test]
fn kill_storm_leaves_runtime_consistent() {
    Runtime::run(RuntimeConfig::new(8).resilient(true), |ctx| {
        // Kill several places while collective work is in flight.
        for victim in [3u32, 5, 7] {
            let _ = ctx.finish(|fs| {
                for p in ctx.live_subset(&ctx.world()).iter() {
                    fs.async_at(p, move |ctx| {
                        if ctx.here().id() == victim - 1 {
                            let _ = ctx.kill_place(Place::new(victim));
                        }
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    });
                }
            });
        }
        let live = ctx.live_subset(&ctx.world());
        assert_eq!(live.len(), 5);
        // Survivors still do work.
        let n = Arc::new(AtomicU64::new(0));
        ctx.finish(|fs| {
            for p in live.iter() {
                let n = Arc::clone(&n);
                fs.async_at(p, move |_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 5);
    })
    .unwrap();
}

#[test]
fn plh_lifecycle_under_failures() {
    Runtime::run(RuntimeConfig::new(4).resilient(true), |ctx| {
        let world = ctx.world();
        // Create, use, destroy — repeatedly, with a failure in the middle.
        for round in 0..10u64 {
            let group = ctx.live_subset(&world);
            let plh =
                PlaceLocalHandle::make(ctx, &group, move |ctx| ctx.here().id() as u64 + round)
                    .unwrap();
            if round == 4 {
                ctx.kill_place(Place::new(3)).unwrap();
            }
            let live = ctx.live_subset(&group);
            let sum = Arc::new(AtomicU64::new(0));
            ctx.finish(|fs| {
                for p in live.iter() {
                    let sum = Arc::clone(&sum);
                    fs.async_at(p, move |ctx| {
                        if let Ok(v) = plh.local(ctx) {
                            sum.fetch_add(*v, Ordering::Relaxed);
                        }
                    });
                }
            })
            .unwrap();
            let expect: u64 = live.iter().map(|p| p.id() as u64 + round).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expect, "round {round}");
            plh.destroy(ctx, &group).unwrap();
        }
    })
    .unwrap();
}

#[test]
fn many_runtimes_sequentially() {
    // Construction/teardown must not leak threads or deadlock.
    for i in 0..20 {
        let out = Runtime::run(RuntimeConfig::new(3).resilient(i % 2 == 0), move |ctx| {
            ctx.world().len() as u64 + i
        })
        .unwrap();
        assert_eq!(out, 3 + i);
    }
}

#[test]
fn at_fetches_data_not_just_effects() {
    Runtime::run(RuntimeConfig::new(3).resilient(true), |ctx| {
        // Ship a payload out and a transformed payload back.
        let payload: Vec<u64> = (0..1000).collect();
        let sum: u64 = ctx
            .at(Place::new(2), move |_| payload.iter().sum())
            .unwrap();
        assert_eq!(sum, 499_500);
    })
    .unwrap();
}

#[test]
fn elastic_growth_under_load() {
    Runtime::run(RuntimeConfig::new(2).resilient(true), |ctx| {
        // Spawn places while finishes run.
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let fresh = ctx.spawn_place().unwrap();
            let total = Arc::clone(&total);
            ctx.finish(|fs| {
                for p in ctx.all_places().iter() {
                    let total = Arc::clone(&total);
                    fs.async_at(p, move |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert!(ctx.is_alive(fresh));
        }
        assert_eq!(ctx.all_places().len(), 7);
        // 3 + 4 + 5 + 6 + 7 completions.
        assert_eq!(total.load(Ordering::Relaxed), 25);
    })
    .unwrap();
}
