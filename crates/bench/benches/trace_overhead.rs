//! Cost of the tracing instrumentation on the serialization hot loop, the
//! same shape as the `serial_throughput` group: the `trace_off` variants
//! must be indistinguishable from the uninstrumented baseline (the disabled
//! `SpanGuard` takes no clock reading and touches no atomics), while
//! `trace_on` shows the real price of a ring push + histogram record.
//! The `monitor_overhead` group does the same for the health board that
//! feeds the Prometheus endpoint: disabled, its per-task updates must be a
//! single branch.

use apgas::monitor::{HealthBoard, PlaceHealth};
use apgas::serial::write_slice;
use apgas::trace::{SpanKind, Tracer, DEFAULT_RING_CAPACITY};
use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use gml_matrix::builder;
use std::hint::black_box;

fn bench_span_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");

    let off = Tracer::disabled();
    g.bench_function("span_guard_disabled", |b| {
        b.iter(|| {
            let _g = off.span(0, SpanKind::Encode, black_box(1));
        })
    });

    let on = Tracer::enabled(DEFAULT_RING_CAPACITY);
    on.ensure_place(1);
    g.bench_function("span_guard_enabled", |b| {
        b.iter(|| {
            let _g = on.span(0, SpanKind::Encode, black_box(1));
        })
    });
    g.bench_function("instant_enabled", |b| {
        b.iter(|| on.instant(0, SpanKind::AsyncAt, black_box(1)))
    });
    g.finish();
}

/// The instrumented hot loop itself: encode a 10k-element f64 payload
/// (the checkpoint data plane's unit of work) bare, under a disabled
/// tracer, and under an enabled one.
fn bench_hot_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead_hot_loop");
    let data = builder::random_vector(10_000, 17).into_vec();
    let encode = |data: &[f64]| {
        let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
        write_slice(data, &mut buf);
        buf.freeze()
    };

    g.bench_function("encode_10k_untraced", |b| b.iter(|| black_box(encode(black_box(&data)))));

    let off = Tracer::disabled();
    g.bench_function("encode_10k_trace_off", |b| {
        b.iter(|| {
            let _g = off.span(0, SpanKind::Encode, data.len() as u64);
            black_box(encode(black_box(&data)))
        })
    });

    let on = Tracer::enabled(DEFAULT_RING_CAPACITY);
    on.ensure_place(1);
    g.bench_function("encode_10k_trace_on", |b| {
        b.iter(|| {
            let _g = on.span(0, SpanKind::Encode, data.len() as u64);
            black_box(encode(black_box(&data)))
        })
    });
    g.finish();
}

/// The dispatcher-loop health instrumentation, monitor off vs on: one
/// dispatch/complete pair per task, exactly as `dispatch_loop` issues them.
fn bench_monitor_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor_overhead");

    let off = HealthBoard::new(false);
    let off_h = PlaceHealth::default();
    g.bench_function("dispatch_complete_disabled", |b| {
        b.iter(|| {
            off.on_dispatch(black_box(&off_h));
            off.on_complete(black_box(&off_h));
        })
    });

    let on = HealthBoard::new(true);
    let on_h = PlaceHealth::default();
    g.bench_function("dispatch_complete_enabled", |b| {
        b.iter(|| {
            on.on_dispatch(black_box(&on_h));
            on.on_complete(black_box(&on_h));
        })
    });

    // The same hot encode loop as above, with the per-task health updates
    // a monitored dispatcher adds around it.
    let data = builder::random_vector(10_000, 17).into_vec();
    let encode = |data: &[f64]| {
        let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
        write_slice(data, &mut buf);
        buf.freeze()
    };
    g.bench_function("encode_10k_monitor_off", |b| {
        b.iter(|| {
            off.on_dispatch(&off_h);
            let r = black_box(encode(black_box(&data)));
            off.on_complete(&off_h);
            r
        })
    });
    g.bench_function("encode_10k_monitor_on", |b| {
        b.iter(|| {
            on.on_dispatch(&on_h);
            let r = black_box(encode(black_box(&data)));
            on.on_complete(&on_h);
            r
        })
    });
    g.finish();
}

criterion_group!(trace_overhead, bench_span_primitives, bench_hot_loop, bench_monitor_updates);
criterion_main!(trace_overhead);
