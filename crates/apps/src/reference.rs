//! Single-place reference implementations used to verify the distributed
//! codes bit-for-bit (PageRank) or to tolerance (regressions).
//!
//! These are deliberately straightforward sequential programs over the
//! single-place matrix types; any disagreement with the distributed
//! versions indicates a bug in the distribution/restore machinery, not in
//! the algorithm.

use gml_matrix::{builder, DenseMatrix, Vector};

use crate::sigmoid;

/// Sequential PageRank: `P = α·G·P + (1-α)·(UᵀP)·1` for `iters` iterations.
///
/// Matches the distributed computation's floating-point result exactly: the
/// distributed version computes each rank entry from the same sparse row
/// dot product, and the `UᵀP` reduction is summed in segment order, which
/// for uniform `U` equals this left-to-right sum.
pub fn pagerank(n: usize, out_degree: usize, seed: u64, alpha: f64, iters: usize) -> Vector {
    let g = builder::random_link_matrix(n, out_degree, seed);
    let u = Vector::constant(n, 1.0 / n as f64);
    let mut p = Vector::constant(n, 1.0 / n as f64);
    for _ in 0..iters {
        let mut gp = g.mult_vec(&p);
        gp.scale(alpha);
        let utp1a = u.dot(&p) * (1.0 - alpha);
        gp.cell_add_scalar(utp1a);
        p = gp;
    }
    p
}

/// The training set the distributed LinReg/LogReg build, assembled at one
/// place: `X` from [`builder::random_dense_rows`] and the hidden weights.
pub fn training_matrix(examples: usize, features: usize, seed: u64) -> (DenseMatrix, Vector) {
    let x = builder::random_dense_rows(features, seed, 0, examples);
    let w_star = builder::random_vector(features, seed.wrapping_add(1));
    (x, w_star)
}

/// Sequential conjugate-gradient ridge regression: solves
/// `(XᵀX + λI) w = Xᵀy` with `iters` CG steps from `w = 0`.
pub fn linreg_cg(x: &DenseMatrix, y: &Vector, lambda: f64, iters: usize) -> Vector {
    let features = x.cols();
    let mut w = Vector::zeros(features);
    let mut r = x.mult_trans_vec(y);
    let mut p = r.clone();
    let mut rho = r.norm2_sq();
    for _ in 0..iters {
        let xp = x.mult_vec(&p);
        let mut q = x.mult_trans_vec(&xp);
        q.axpy(lambda, &p);
        let pq = p.dot(&q);
        if pq == 0.0 {
            break;
        }
        let alpha = rho / pq;
        w.axpy(alpha, &p);
        r.axpy(-alpha, &q);
        let rho_new = r.norm2_sq();
        if rho_new == 0.0 {
            // Exact convergence; continuing would compute beta = 0/0.
            break;
        }
        let beta = rho_new / rho;
        p.scale(beta);
        p.cell_add(&r);
        rho = rho_new;
    }
    w
}

/// Sequential batch gradient-descent logistic regression.
pub fn logreg_gd(
    x: &DenseMatrix,
    y: &Vector,
    lambda: f64,
    learning_rate: f64,
    iters: usize,
) -> Vector {
    let m = x.rows() as f64;
    let mut w = Vector::zeros(x.cols());
    for _ in 0..iters {
        let mut z = x.mult_vec(&w);
        z.map_inplace(sigmoid);
        // z - y (prediction error)
        for (zi, yi) in z.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *zi -= *yi;
        }
        let grad = x.mult_trans_vec(&z);
        // w = (1 - lr*λ) w - (lr/m) grad
        w.scale(1.0 - learning_rate * lambda);
        w.axpy(-learning_rate / m, &grad);
    }
    w
}

/// Sequential Gaussian non-negative matrix factorisation via Lee–Seung
/// multiplicative updates: factorise `V ≈ W·H` (all entries non-negative),
/// minimising `‖V − WH‖²_F`. Returns `(W, H)`.
///
/// Update order matches the distributed implementation exactly:
/// `H ← H ∘ (WᵀV) ⊘ (WᵀW·H + ε)`, then `W ← W ∘ (V·Hᵀ) ⊘ (W·(H·Hᵀ) + ε)`.
pub fn gnmf(
    v: &DenseMatrix,
    rank: usize,
    iters: usize,
    eps: f64,
    seed: u64,
) -> (DenseMatrix, DenseMatrix) {
    let (m, n) = (v.rows(), v.cols());
    let mut w = nonneg_dense(m, rank, seed);
    let mut h = nonneg_dense(rank, n, seed.wrapping_add(1));
    for _ in 0..iters {
        // H update.
        let wt = w.transpose();
        let mut wtv = DenseMatrix::zeros(rank, n);
        wt.gemm(1.0, v, 0.0, &mut wtv);
        let mut wtw = DenseMatrix::zeros(rank, rank);
        wt.gemm(1.0, &w, 0.0, &mut wtw);
        let mut wtwh = DenseMatrix::zeros(rank, n);
        wtw.gemm(1.0, &h, 0.0, &mut wtwh);
        h.cell_mult(&wtv);
        h.cell_div_guarded(&wtwh, eps);
        // W update.
        let ht = h.transpose();
        let mut vht = DenseMatrix::zeros(m, rank);
        v.gemm(1.0, &ht, 0.0, &mut vht);
        let mut hht = DenseMatrix::zeros(rank, rank);
        h.gemm(1.0, &ht, 0.0, &mut hht);
        let mut whht = DenseMatrix::zeros(m, rank);
        w.gemm(1.0, &hht, 0.0, &mut whht);
        w.cell_mult(&vht);
        w.cell_div_guarded(&whht, eps);
    }
    (w, h)
}

/// `‖V − W·H‖²_F` — the GNMF objective.
pub fn gnmf_objective(v: &DenseMatrix, w: &DenseMatrix, h: &DenseMatrix) -> f64 {
    let mut wh = DenseMatrix::zeros(v.rows(), v.cols());
    w.gemm(1.0, h, 0.0, &mut wh);
    wh.scale(-1.0);
    wh.cell_add(v);
    wh.as_slice().iter().map(|x| x * x).sum()
}

/// A dense matrix with entries uniform in `(0, 1]` (strictly positive, as
/// NMF factors must be). Row `i` depends only on `(seed, i)` so distributed
/// builds can generate their own row blocks.
pub fn nonneg_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    nonneg_dense_rows(cols, seed, 0, rows)
}

/// The row slice `r0..r1` of [`nonneg_dense`].
pub fn nonneg_dense_rows(cols: usize, seed: u64, r0: usize, r1: usize) -> DenseMatrix {
    let mut out = builder::random_dense_rows(cols, seed, r0, r1);
    for v in out.as_mut_slice() {
        *v = (*v + 1.0) / 2.0 + 1e-3; // map [-1,1) → (0,1]
    }
    out
}

/// Binary labels from a hidden separator (shared by LogReg's distributed
/// and sequential builds).
pub fn classification_labels(x: &DenseMatrix, w_star: &Vector) -> Vector {
    let scores = x.mult_vec(w_star);
    Vector::from_vec(
        scores.as_slice().iter().map(|&s| if s > 0.0 { 1.0 } else { 0.0 }).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_mass_conserved() {
        let p = pagerank(40, 4, 3, 0.85, 25);
        assert!((p.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linreg_recovers_hidden_weights() {
        let (x, w_star) = training_matrix(200, 6, 42);
        let y = x.mult_vec(&w_star);
        let w = linreg_cg(&x, &y, 0.0, 30);
        assert!(w.max_abs_diff(&w_star) < 1e-6, "CG converges on noiseless data");
    }

    #[test]
    fn linreg_with_ridge_shrinks_weights() {
        let (x, w_star) = training_matrix(100, 4, 1);
        let y = x.mult_vec(&w_star);
        let w0 = linreg_cg(&x, &y, 0.0, 40);
        let w1 = linreg_cg(&x, &y, 50.0, 40);
        assert!(w1.norm2() < w0.norm2(), "regularisation shrinks the solution");
    }

    #[test]
    fn gnmf_objective_is_non_increasing() {
        let v = nonneg_dense(20, 12, 3);
        let mut prev = f64::INFINITY;
        for iters in [1usize, 3, 6, 10, 20] {
            let (w, h) = gnmf(&v, 4, iters, 1e-9, 3);
            let obj = gnmf_objective(&v, &w, &h);
            assert!(
                obj <= prev + 1e-9,
                "objective rose from {prev} to {obj} at {iters} iters"
            );
            prev = obj;
        }
    }

    #[test]
    fn gnmf_factors_stay_nonnegative() {
        let v = nonneg_dense(15, 10, 7);
        let (w, h) = gnmf(&v, 3, 25, 1e-9, 7);
        assert!(w.as_slice().iter().all(|&x| x >= 0.0));
        assert!(h.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gnmf_recovers_a_low_rank_matrix_well() {
        // V is exactly rank 3: NMF should drive the residual near zero.
        let w_true = nonneg_dense(18, 3, 11);
        let h_true = nonneg_dense(3, 9, 12);
        let mut v = DenseMatrix::zeros(18, 9);
        w_true.gemm(1.0, &h_true, 0.0, &mut v);
        let (w, h) = gnmf(&v, 3, 400, 1e-12, 5);
        let rel = gnmf_objective(&v, &w, &h) / v.as_slice().iter().map(|x| x * x).sum::<f64>();
        assert!(rel < 1e-3, "relative residual {rel}");
    }

    #[test]
    fn logreg_separates_training_data() {
        let (x, w_star) = training_matrix(300, 5, 9);
        let y = classification_labels(&x, &w_star);
        let w = logreg_gd(&x, &y, 0.001, 1.0, 200);
        // Training accuracy well above chance.
        let preds = x.mult_vec(&w);
        let correct = preds
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .filter(|(&s, &label)| (s > 0.0) == (label > 0.5))
            .count();
        assert!(correct as f64 / 300.0 > 0.9, "only {correct}/300 correct");
    }
}
