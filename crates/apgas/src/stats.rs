//! Runtime activity counters.
//!
//! These make the resilience costs the paper talks about *observable*: the
//! number of place-zero bookkeeping messages (the source of resilient-X10
//! overhead in Figs 2–4) and the number of bytes serialized across places
//! (the source of checkpoint/restore cost in Table III and Figs 5–7).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters maintained by the runtime. Cheap to update; read them
/// with [`RuntimeStats::snapshot`].
#[derive(Default)]
pub struct RuntimeStats {
    /// Tasks dispatched to any place (both `async_at` and `at`).
    pub tasks_spawned: AtomicU64,
    /// Synchronous `at` round trips.
    pub at_calls: AtomicU64,
    /// Place-zero bookkeeping messages: task-spawn records (each is a
    /// synchronous round trip to place zero in resilient mode).
    pub ctl_spawns: AtomicU64,
    /// Place-zero bookkeeping messages: task terminations.
    pub ctl_terms: AtomicU64,
    /// Place-zero bookkeeping messages: finish-wait registrations.
    pub ctl_waits: AtomicU64,
    /// Bytes of payload serialized for cross-place movement (maintained by
    /// the data layers via [`crate::runtime::Ctx::record_bytes`]).
    pub bytes_shipped: AtomicU64,
    /// Bytes of payload that actually landed at a receiving place (maintained
    /// via [`crate::runtime::Ctx::record_bytes_received`] at every receive
    /// site). Mirrors `bytes_shipped` so ship volume can be cross-checked
    /// end-to-end: in a failure-free run the two are equal; under failure,
    /// payloads shipped to a place that died in flight are counted as shipped
    /// but never as received.
    pub bytes_received: AtomicU64,
    /// Nanoseconds spent encoding cross-place payloads (maintained via
    /// [`crate::runtime::Ctx::encode`]); with `bytes_shipped` this yields
    /// checkpoint encode throughput.
    pub encode_nanos: AtomicU64,
    /// Nanoseconds spent decoding cross-place payloads (maintained via
    /// [`crate::runtime::Ctx::decode`]).
    pub decode_nanos: AtomicU64,
    /// Places killed so far.
    pub failures: AtomicU64,
    /// Places created elastically after startup.
    pub places_spawned: AtomicU64,
    /// Task bodies re-executed by the task-resilience layer after a panic or
    /// timeout (each replay attempt beyond the first counts once).
    pub task_replays: AtomicU64,
    /// Task attempts abandoned because they exceeded the policy deadline.
    pub task_timeouts: AtomicU64,
    /// Replicated-task digest votes where at least one replica disagreed
    /// with the majority — each is a silent error caught by replication.
    pub task_vote_mismatches: AtomicU64,
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Tasks dispatched to any place.
    pub tasks_spawned: u64,
    /// Synchronous `at` round trips.
    pub at_calls: u64,
    /// Place-zero spawn records.
    pub ctl_spawns: u64,
    /// Place-zero termination records.
    pub ctl_terms: u64,
    /// Place-zero finish-wait registrations.
    pub ctl_waits: u64,
    /// Payload bytes serialized across places.
    pub bytes_shipped: u64,
    /// Payload bytes that landed at receiving places.
    pub bytes_received: u64,
    /// Nanoseconds spent encoding cross-place payloads.
    pub encode_nanos: u64,
    /// Nanoseconds spent decoding cross-place payloads.
    pub decode_nanos: u64,
    /// Places killed so far.
    pub failures: u64,
    /// Places created elastically after startup.
    pub places_spawned: u64,
    /// Task bodies replayed after a panic or timeout.
    pub task_replays: u64,
    /// Task attempts abandoned on a policy deadline.
    pub task_timeouts: u64,
    /// Replica digest votes with at least one dissenter.
    pub task_vote_mismatches: u64,
}

impl StatsSnapshot {
    /// Total place-zero bookkeeping messages (the resilient-finish funnel).
    pub fn ctl_total(&self) -> u64 {
        self.ctl_spawns + self.ctl_terms + self.ctl_waits
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            tasks_spawned: self.tasks_spawned.saturating_sub(earlier.tasks_spawned),
            at_calls: self.at_calls.saturating_sub(earlier.at_calls),
            ctl_spawns: self.ctl_spawns.saturating_sub(earlier.ctl_spawns),
            ctl_terms: self.ctl_terms.saturating_sub(earlier.ctl_terms),
            ctl_waits: self.ctl_waits.saturating_sub(earlier.ctl_waits),
            bytes_shipped: self.bytes_shipped.saturating_sub(earlier.bytes_shipped),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            encode_nanos: self.encode_nanos.saturating_sub(earlier.encode_nanos),
            decode_nanos: self.decode_nanos.saturating_sub(earlier.decode_nanos),
            failures: self.failures.saturating_sub(earlier.failures),
            places_spawned: self.places_spawned.saturating_sub(earlier.places_spawned),
            task_replays: self.task_replays.saturating_sub(earlier.task_replays),
            task_timeouts: self.task_timeouts.saturating_sub(earlier.task_timeouts),
            task_vote_mismatches: self
                .task_vote_mismatches
                .saturating_sub(earlier.task_vote_mismatches),
        }
    }

    /// Counter-wise sum `self + other` — for folding a late-settling delta
    /// (e.g. background ships joined after the last report row closed) into
    /// an already-taken delta without losing or double-counting a tick.
    pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            tasks_spawned: self.tasks_spawned + other.tasks_spawned,
            at_calls: self.at_calls + other.at_calls,
            ctl_spawns: self.ctl_spawns + other.ctl_spawns,
            ctl_terms: self.ctl_terms + other.ctl_terms,
            ctl_waits: self.ctl_waits + other.ctl_waits,
            bytes_shipped: self.bytes_shipped + other.bytes_shipped,
            bytes_received: self.bytes_received + other.bytes_received,
            encode_nanos: self.encode_nanos + other.encode_nanos,
            decode_nanos: self.decode_nanos + other.decode_nanos,
            failures: self.failures + other.failures,
            places_spawned: self.places_spawned + other.places_spawned,
            task_replays: self.task_replays + other.task_replays,
            task_timeouts: self.task_timeouts + other.task_timeouts,
            task_vote_mismatches: self.task_vote_mismatches + other.task_vote_mismatches,
        }
    }
}

impl RuntimeStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            at_calls: self.at_calls.load(Ordering::Relaxed),
            ctl_spawns: self.ctl_spawns.load(Ordering::Relaxed),
            ctl_terms: self.ctl_terms.load(Ordering::Relaxed),
            ctl_waits: self.ctl_waits.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            encode_nanos: self.encode_nanos.load(Ordering::Relaxed),
            decode_nanos: self.decode_nanos.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            places_spawned: self.places_spawned.load(Ordering::Relaxed),
            task_replays: self.task_replays.load(Ordering::Relaxed),
            task_timeouts: self.task_timeouts.load(Ordering::Relaxed),
            task_vote_mismatches: self.task_vote_mismatches.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = RuntimeStats::default();
        RuntimeStats::bump(&s.tasks_spawned);
        RuntimeStats::add(&s.bytes_shipped, 100);
        let a = s.snapshot();
        RuntimeStats::bump(&s.tasks_spawned);
        RuntimeStats::bump(&s.ctl_spawns);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.tasks_spawned, 1);
        assert_eq!(d.ctl_spawns, 1);
        assert_eq!(d.bytes_shipped, 0);
        assert_eq!(b.ctl_total(), 1);
    }

    #[test]
    fn since_is_counterwise_exact() {
        let earlier = StatsSnapshot {
            tasks_spawned: 10,
            at_calls: 4,
            ctl_spawns: 3,
            ctl_terms: 3,
            ctl_waits: 1,
            bytes_shipped: 1_000,
            bytes_received: 900,
            encode_nanos: 50,
            decode_nanos: 40,
            failures: 1,
            places_spawned: 0,
            task_replays: 2,
            task_timeouts: 1,
            task_vote_mismatches: 0,
        };
        let later = StatsSnapshot {
            tasks_spawned: 25,
            at_calls: 9,
            ctl_spawns: 8,
            ctl_terms: 7,
            ctl_waits: 3,
            bytes_shipped: 4_000,
            bytes_received: 3_900,
            encode_nanos: 75,
            decode_nanos: 60,
            failures: 2,
            places_spawned: 1,
            task_replays: 5,
            task_timeouts: 2,
            task_vote_mismatches: 1,
        };
        let d = later.since(&earlier);
        assert_eq!(d.tasks_spawned, 15);
        assert_eq!(d.at_calls, 5);
        assert_eq!(d.ctl_spawns, 5);
        assert_eq!(d.ctl_terms, 4);
        assert_eq!(d.ctl_waits, 2);
        assert_eq!(d.bytes_shipped, 3_000);
        assert_eq!(d.bytes_received, 3_000);
        assert_eq!(d.encode_nanos, 25);
        assert_eq!(d.decode_nanos, 20);
        assert_eq!(d.failures, 1);
        assert_eq!(d.places_spawned, 1);
        assert_eq!(d.task_replays, 3);
        assert_eq!(d.task_timeouts, 1);
        assert_eq!(d.task_vote_mismatches, 1);
        assert_eq!(d.ctl_total(), 11, "ctl_total sums the three ctl deltas");
    }

    #[test]
    fn since_saturates_when_counters_reset() {
        // A snapshot taken before a counter reset (e.g. comparing across two
        // separate runtimes) can be "ahead" of the later one; the delta must
        // clamp field-wise at zero, never wrap.
        let before_reset = StatsSnapshot {
            tasks_spawned: 100,
            at_calls: 50,
            ctl_spawns: 30,
            ctl_terms: 30,
            ctl_waits: 10,
            bytes_shipped: 1 << 30,
            bytes_received: 1 << 30,
            encode_nanos: u64::MAX,
            decode_nanos: 7,
            failures: 3,
            places_spawned: 2,
            task_replays: 4,
            task_timeouts: 2,
            task_vote_mismatches: 1,
        };
        let after_reset = StatsSnapshot { tasks_spawned: 5, decode_nanos: 9, ..Default::default() };
        let d = after_reset.since(&before_reset);
        assert_eq!(d.tasks_spawned, 0, "100 -> 5 saturates, does not wrap");
        assert_eq!(d.at_calls, 0);
        assert_eq!(d.ctl_total(), 0);
        assert_eq!(d.bytes_shipped, 0);
        assert_eq!(d.encode_nanos, 0, "even a u64::MAX earlier value saturates");
        assert_eq!(d.decode_nanos, 2, "fields that did advance still diff exactly");
        assert_eq!(d.failures, 0);
    }

    #[test]
    fn ctl_total_zero_and_mixed() {
        assert_eq!(StatsSnapshot::default().ctl_total(), 0);
        let s = StatsSnapshot { ctl_spawns: 2, ctl_terms: 0, ctl_waits: 5, ..Default::default() };
        assert_eq!(s.ctl_total(), 7);
    }
}
