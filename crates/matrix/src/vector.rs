//! A dense column vector (`x10.matrix.Vector`).
//!
//! The reductions (dot/norm/sum) and `axpy` fan out onto [`apgas::pool`]
//! with partials combined in fixed chunk order, and each chunk runs the
//! 8-lane multi-accumulator kernels from `crate::microkernel` — lane
//! combines happen in a fixed order too, so results stay bit-identical for
//! every worker count (see the crate docs). The `*_reference` twins keep
//! the plain serial scalar loops as numeric oracles.

use apgas::pool;
use apgas::serial::{read_f64_vec, write_f64_slice, Serial};
use bytes::{Bytes, BytesMut};

use crate::microkernel;

/// Items per chunk for the element-wise vector kernels (each item is ~one
/// fused multiply-add of work).
const VEC_MIN_CHUNK: usize = 16_384;

/// A single column of `f64` elements.
#[derive(Clone, Debug, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// A zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Wrap an existing buffer.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// A vector with every element equal to `v`.
    pub fn constant(n: usize, v: f64) -> Self {
        Vector { data: vec![v; n] }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the underlying storage mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// `self[i]`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    #[inline]
    /// Write one element.
    pub fn set(&mut self, i: usize, v: f64) {
        self.data[i] = v;
    }

    /// Overwrite every element with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self *= alpha` (GML's `scale`).
    pub fn scale(&mut self, alpha: f64) -> &mut Self {
        for v in &mut self.data {
            *v *= alpha;
        }
        self
    }

    /// Element-wise `self += other` (GML's `cellAdd`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn cell_add(&mut self, other: &Vector) -> &mut Self {
        assert_eq!(self.len(), other.len(), "cell_add length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
        self
    }

    /// `self[i] += s` for all i (GML's `cellAdd(Double)`).
    pub fn cell_add_scalar(&mut self, s: f64) -> &mut Self {
        for v in &mut self.data {
            *v += s;
        }
        self
    }

    /// Element-wise `self *= other` (GML's `cellMult`).
    pub fn cell_mult(&mut self, other: &Vector) -> &mut Self {
        assert_eq!(self.len(), other.len(), "cell_mult length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= *b;
        }
        self
    }

    /// `self += alpha * x` (BLAS axpy). One fused multiply-add per element
    /// inside each pool chunk — order-independent per element, so chunking
    /// never changes bits.
    pub fn axpy(&mut self, alpha: f64, x: &Vector) -> &mut Self {
        assert_eq!(self.len(), x.len(), "axpy length mismatch");
        pool::for_each_chunk_mut(&mut self.data, VEC_MIN_CHUNK, |_, r, sub| {
            microkernel::axpy(alpha, &x.data[r], sub);
        });
        self
    }

    /// Scalar reference twin of [`axpy`]: serial multiply-then-add.
    pub fn axpy_reference(&mut self, alpha: f64, x: &Vector) -> &mut Self {
        assert_eq!(self.len(), x.len(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&x.data) {
            *a += alpha * *b;
        }
        self
    }

    /// Inner product `selfᵀ · other` — 8-lane multi-accumulator partials
    /// per chunk, combined in fixed chunk order (bit-identical across
    /// worker counts).
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        pool::sum_chunks(self.len(), VEC_MIN_CHUNK, |r| {
            microkernel::dot(&self.data[r.clone()], &other.data[r])
        })
    }

    /// Scalar reference twin of [`dot`]: the serial left-to-right sum.
    pub fn dot_reference(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Squared Euclidean norm (same deterministic chunked reduction).
    pub fn norm2_sq(&self) -> f64 {
        pool::sum_chunks(self.len(), VEC_MIN_CHUNK, |r| {
            microkernel::dot(&self.data[r.clone()], &self.data[r])
        })
    }

    /// Scalar reference twin of [`norm2_sq`].
    pub fn norm2_sq_reference(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.norm2_sq().sqrt()
    }

    /// Sum of all elements (same deterministic chunked reduction).
    pub fn sum(&self) -> f64 {
        pool::sum_chunks(self.len(), VEC_MIN_CHUNK, |r| microkernel::sum(&self.data[r]))
    }

    /// Scalar reference twin of [`sum`]: the serial left-to-right sum.
    pub fn sum_reference(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Apply `f` to every element in place (GML's `map`).
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) -> &mut Self {
        for v in &mut self.data {
            *v = f(*v);
        }
        self
    }

    /// Copy all elements from `src` (lengths must match) — GML's `copyTo`
    /// viewed from the destination.
    pub fn copy_from(&mut self, src: &Vector) {
        assert_eq!(self.len(), src.len(), "copy_from length mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Copy `src` into `self[offset .. offset+src.len()]` — used when
    /// gathering distributed segments.
    pub fn copy_from_at(&mut self, offset: usize, src: &[f64]) {
        self.data[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Borrow the sub-range `[offset, offset+len)`.
    pub fn segment(&self, offset: usize, len: usize) -> &[f64] {
        &self.data[offset..offset + len]
    }

    /// Max absolute difference against `other` (testing aid).
    pub fn max_abs_diff(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Serial for Vector {
    fn write(&self, buf: &mut BytesMut) {
        write_f64_slice(&self.data, buf);
    }
    fn read(buf: &mut Bytes) -> Self {
        Vector { data: read_f64_vec(buf) }
    }
    fn byte_len(&self) -> usize {
        8 + 8 * self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0; 3]);
        assert_eq!(Vector::constant(2, 5.0).as_slice(), &[5.0, 5.0]);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn scale_add_mult() {
        let mut v = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        v.scale(2.0);
        assert_eq!(v.as_slice(), &[2.0, 4.0, 6.0]);
        v.cell_add(&Vector::constant(3, 1.0));
        assert_eq!(v.as_slice(), &[3.0, 5.0, 7.0]);
        v.cell_add_scalar(-3.0);
        assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0]);
        v.cell_mult(&Vector::from_vec(vec![1.0, 10.0, 0.5]));
        assert_eq!(v.as_slice(), &[0.0, 20.0, 2.0]);
    }

    #[test]
    fn axpy_dot_norm() {
        let mut y = Vector::from_vec(vec![1.0, 1.0]);
        let x = Vector::from_vec(vec![2.0, -1.0]);
        y.axpy(0.5, &x);
        assert_eq!(y.as_slice(), &[2.0, 0.5]);
        assert!((y.dot(&x) - 3.5).abs() < 1e-12);
        assert!((Vector::from_vec(vec![3.0, 4.0]).norm2() - 5.0).abs() < 1e-12);
        assert_eq!(Vector::from_vec(vec![1.0, 2.0, 3.0]).sum(), 6.0);
    }

    #[test]
    fn map_and_copy() {
        let mut v = Vector::from_vec(vec![1.0, -2.0]);
        v.map_inplace(f64::abs);
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
        let mut dst = Vector::zeros(2);
        dst.copy_from(&v);
        assert_eq!(dst, v);
        let mut big = Vector::zeros(5);
        big.copy_from_at(2, v.as_slice());
        assert_eq!(big.as_slice(), &[0.0, 0.0, 1.0, 2.0, 0.0]);
        assert_eq!(big.segment(2, 2), &[1.0, 2.0]);
    }

    #[test]
    fn serialization_round_trip() {
        let v = Vector::from_vec(vec![1.5, -2.5, 0.0, f64::MAX]);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.byte_len());
        assert_eq!(Vector::from_bytes(bytes), v);
    }

    #[test]
    fn max_abs_diff() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_cell_add_panics() {
        Vector::zeros(2).cell_add(&Vector::zeros(3));
    }
}
