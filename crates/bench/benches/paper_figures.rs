//! `cargo bench` entry point that regenerates every table and figure of the
//! paper at a quick scale (unless the GML_BENCH_* env knobs are already
//! set). For full sweeps run the individual binaries, e.g.
//! `GML_BENCH_PLACES=2,4,8,12,16,24,32,44 cargo run --release -p gml-bench --bin all_figures`.

use gml_bench::figures;
use gml_bench::AppKind;

fn default_env(name: &str, value: &str) {
    if std::env::var(name).is_err() {
        // Benches run single-threaded at startup; no concurrent readers yet.
        std::env::set_var(name, value);
    }
}

fn main() {
    // Quick-pass defaults so `cargo bench` finishes in minutes.
    default_env("GML_BENCH_PLACES", "2,4,8,16");
    default_env("GML_BENCH_RUNS", "2");
    default_env("GML_BENCH_ITERS", "10");

    println!("regenerating all paper tables/figures (quick pass)");
    figures::loc_table();
    figures::overhead_figure(AppKind::LinReg, "Fig2");
    figures::overhead_figure(AppKind::LogReg, "Fig3");
    figures::overhead_figure(AppKind::PageRank, "Fig4");
    figures::checkpoint_table();
    figures::restore_figure(AppKind::LinReg, "Fig5");
    figures::restore_figure(AppKind::LogReg, "Fig6");
    figures::restore_figure(AppKind::PageRank, "Fig7");
    figures::breakdown_table();
    figures::bookkeeping_ablation();
    figures::redundancy_ablation_table();
}
