//! Machine-readable perf trajectory: runs the serialization throughput
//! benchmarks (the checkpoint plane's hot path) and writes the results as
//! `BENCH_serial_throughput.json` in the current directory, so successive
//! commits can be compared without scraping bench stdout.
//!
//! Usage: `cargo run --release -p gml-bench --bin bench_json`

use apgas::serial::{fallback, read_vec, write_slice, Serial};
use bytes::BytesMut;
use criterion::{BatchSize, BenchResult, Criterion};
use gml_matrix::{builder, SparseCSR};
use std::hint::black_box;
use std::io::Write as _;

fn run(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_throughput");
    let n = 1_000_000usize;
    let data = builder::random_vector(n, 11).into_vec();

    g.bench_function("vec_f64_1m_encode_bulk", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
            write_slice(black_box(&data), &mut buf);
            black_box(buf.freeze())
        })
    });
    g.bench_function("vec_f64_1m_encode_elementwise", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
            fallback::write_slice(black_box(&data), &mut buf);
            black_box(buf.freeze())
        })
    });
    let encoded = {
        let mut buf = BytesMut::with_capacity(8 + 8 * data.len());
        write_slice(&data, &mut buf);
        buf.freeze()
    };
    g.bench_function("vec_f64_1m_decode_bulk", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut by| black_box(read_vec::<f64>(&mut by)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("vec_f64_1m_decode_elementwise", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut by| black_box(fallback::read_vec::<f64>(&mut by)),
            BatchSize::LargeInput,
        )
    });
    let sparse = builder::random_csr(6000, 6000, 8, 13);
    g.bench_function(format!("csr_nnz{}_encode", sparse.nnz()), |b| {
        b.iter(|| black_box(sparse.to_bytes()))
    });
    let sparse_bytes = sparse.to_bytes();
    g.bench_function(format!("csr_nnz{}_decode", sparse.nnz()), |b| {
        b.iter_batched(
            || sparse_bytes.clone(),
            |by| black_box(SparseCSR::from_bytes(by)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn mean_of<'a>(results: &'a [BenchResult], suffix: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.name.ends_with(suffix))
}

fn main() {
    let mut c = Criterion::default();
    run(&mut c);
    let results = c.results();

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{sep}\n",
            r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    json.push_str("  ]");
    // Derived speedups of the bulk fast path over the element-wise codec.
    if let (Some(bulk), Some(elem)) = (
        mean_of(results, "vec_f64_1m_encode_bulk"),
        mean_of(results, "vec_f64_1m_encode_elementwise"),
    ) {
        json.push_str(&format!(
            ",\n  \"encode_speedup_f64_1m\": {:.2}",
            elem.mean_ns / bulk.mean_ns
        ));
    }
    if let (Some(bulk), Some(elem)) = (
        mean_of(results, "vec_f64_1m_decode_bulk"),
        mean_of(results, "vec_f64_1m_decode_elementwise"),
    ) {
        json.push_str(&format!(
            ",\n  \"decode_speedup_f64_1m\": {:.2}",
            elem.mean_ns / bulk.mean_ns
        ));
    }
    json.push_str("\n}\n");

    let path = "BENCH_serial_throughput.json";
    let mut f = std::fs::File::create(path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {path}");
}
