//! Table IV: percentage of total time consumed by checkpoint and restore
//! operations at the largest place count.
fn main() {
    gml_bench::figures::breakdown_table();
}
