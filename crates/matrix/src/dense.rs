//! Column-major dense matrix (`x10.matrix.DenseMatrix`).
//!
//! The BLAS-shaped kernels (`gemv`/`gemv_trans`/`gemm`/`gemm_tn_acc`) fan
//! out onto [`apgas::pool`] over disjoint output chunks and run the
//! cache-blocked/register-blocked inner loops from `crate::microkernel`
//! inside each chunk; see the crate docs and DESIGN.md §3.10 for the
//! determinism and finite-values contracts. Each blocked kernel keeps a
//! `*_reference` scalar twin (the historical serial loop) as the numeric
//! oracle for the property tests and the `kernel_reference` CI bin.

use apgas::pool;
use apgas::serial::{read_f64_vec, write_f64_slice, Serial};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::microkernel::{self, GEMV_COLS, KC, MR, NR};
use crate::tile;
use crate::vector::Vector;
use crate::{apply_beta, beta_combine, debug_check_finite, min_chunk_items};

/// Stream one packed A block (`MR`-row strips) against one packed B panel
/// (`NR`-column strips) through the register microkernel, accumulating into
/// the column-major chunk `sub` (`m` rows × `nc` columns). Shared by
/// [`DenseMatrix::gemm`] and [`DenseMatrix::gemm_tn_acc`].
fn microkernel_block(pa_block: &[f64], pb_panel: &[f64], kb: usize, m: usize, nc: usize, sub: &mut [f64]) {
    for (t, pbs) in pb_panel.chunks_exact(kb * NR).enumerate() {
        let j0 = t * NR;
        let jw = (nc - j0).min(NR);
        for (s, pas) in pa_block.chunks_exact(kb * MR).enumerate() {
            let i0 = s * MR;
            let iw = (m - i0).min(MR);
            let acc = microkernel::gemm_mr_nr(pas, pbs);
            for (jj, accj) in acc.iter().enumerate().take(jw) {
                let cj = &mut sub[(j0 + jj) * m + i0..][..iw];
                for (cv, &av) in cj.iter_mut().zip(accj) {
                    *cv += av;
                }
            }
        }
    }
}

/// A dense matrix in column-major (Fortran/BLAS) storage.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An all-zero m×n matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Wrap a column-major buffer of length `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense buffer size mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Build from a row-major nested description (testing convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let m = rows.len();
        let n = if m == 0 { 0 } else { rows[0].len() };
        let mut out = DenseMatrix::zeros(m, n);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), n, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        out
    }

    /// The n×n identity.
    pub fn identity(n: usize) -> Self {
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a.set(i, i, 1.0);
        }
        a
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the underlying storage mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    /// Read one element.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    #[inline]
    /// Write one element.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Borrow column `j`.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Borrow column `j` mutably.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) -> &mut Self {
        for v in &mut self.data {
            *v *= alpha;
        }
        self
    }

    /// Element-wise `self += other`.
    pub fn cell_add(&mut self, other: &DenseMatrix) -> &mut Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
        self
    }

    /// `y = alpha * A * x + beta * y` (`beta == 0` assigns, BLAS-style;
    /// `alpha == 0` reads neither `A` nor `x`). Register-blocked column
    /// sweep: four columns per pass with a fixed per-element multiply-add
    /// chain, remaining columns via single-column `axpy`. Row chunks of `y`
    /// fan out onto the compute pool; the column grouping depends only on
    /// the matrix shape, so worker-count parity is untouched.
    pub fn gemv(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gemv: x length != cols");
        assert_eq!(y.len(), self.rows, "gemv: y length != rows");
        debug_check_finite("gemv: A", &self.data);
        debug_check_finite("gemv: x", x);
        if alpha == 0.0 || self.cols == 0 {
            apply_beta(beta, y);
            return;
        }
        // Floor the band height: a chunk walks a `band × cols` strip of the
        // column-major matrix, so narrow bands turn every column into a
        // sub-cache-line strided touch and starve the prefetcher. 1024 rows
        // keeps each per-column segment ≥ 8 KiB of contiguous reads. Pure
        // function of the shape — and per-row results don't depend on the
        // band split at all, so chunking changes can't change bits.
        const GEMV_BAND_MIN_ROWS: usize = 1024;
        let n = pool::chunk_count(self.rows, min_chunk_items(self.cols).max(GEMV_BAND_MIN_ROWS));
        let rows = self.rows;
        let groups = self.cols - self.cols % GEMV_COLS;
        pool::run_split(y, n, |i| pool::chunk_range(rows, n, i), |i, sub| {
            let r = pool::chunk_range(rows, n, i);
            apply_beta(beta, sub);
            let mut j = 0;
            while j < groups {
                let coef: [f64; GEMV_COLS] = std::array::from_fn(|l| alpha * x[j + l]);
                let cols: [&[f64]; GEMV_COLS] =
                    std::array::from_fn(|l| &self.col(j + l)[r.start..r.end]);
                microkernel::gemv_4col(&coef, cols, sub);
                j += GEMV_COLS;
            }
            for (jj, &xj) in x.iter().enumerate().skip(groups) {
                microkernel::axpy(alpha * xj, &self.col(jj)[r.start..r.end], sub);
            }
        });
    }

    /// Scalar reference twin of [`gemv`]: the historical serial column
    /// sweep, with the zero skip keyed on the raw entry (`x[j] == 0.0`
    /// skips the column, suppressing IEEE propagation from non-finite `A`
    /// entries — see the crate docs). The blocked kernel may differ from
    /// this oracle in final ULPs; `kernel_reference` CI bounds the drift.
    pub fn gemv_reference(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gemv: x length != cols");
        assert_eq!(y.len(), self.rows, "gemv: y length != rows");
        apply_beta(beta, y);
        if alpha == 0.0 {
            return;
        }
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let axj = alpha * xj;
            for (yi, aij) in y.iter_mut().zip(self.col(j)) {
                *yi += axj * *aij;
            }
        }
    }

    /// `y = alpha * Aᵀ * x + beta * y` (`beta == 0` assigns, BLAS-style;
    /// `alpha == 0` reads neither `A` nor `x`). Each output element is an
    /// independent column dot product; four columns are dotted per pass
    /// (sharing the `x` loads) with per-column lane structure identical to
    /// the single-column kernel, so neither grouping nor the pool's column
    /// chunking changes any output bit.
    pub fn gemv_trans(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "gemv_trans: x length != rows");
        assert_eq!(y.len(), self.cols, "gemv_trans: y length != cols");
        debug_check_finite("gemv_trans: A", &self.data);
        debug_check_finite("gemv_trans: x", x);
        if alpha == 0.0 || self.rows == 0 {
            apply_beta(beta, y);
            return;
        }
        let n = pool::chunk_count(self.cols, min_chunk_items(self.rows));
        let cols = self.cols;
        pool::run_split(y, n, |i| pool::chunk_range(cols, n, i), |i, sub| {
            let r = pool::chunk_range(cols, n, i);
            let mut dj = 0;
            while dj + GEMV_COLS <= sub.len() {
                let quad: [&[f64]; GEMV_COLS] =
                    std::array::from_fn(|l| self.col(r.start + dj + l));
                let dots = microkernel::dot4_cols(quad, x);
                for (yj, &d) in sub[dj..dj + GEMV_COLS].iter_mut().zip(&dots) {
                    *yj = beta_combine(beta, *yj, alpha * d);
                }
                dj += GEMV_COLS;
            }
            for (yj, jcol) in sub[dj..].iter_mut().zip(r.start + dj..r.end) {
                let dot = microkernel::dot4(self.col(jcol), x);
                *yj = beta_combine(beta, *yj, alpha * dot);
            }
        });
    }

    /// Scalar reference twin of [`gemv_trans`]: the historical serial
    /// per-column scalar dot.
    pub fn gemv_trans_reference(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "gemv_trans: x length != rows");
        assert_eq!(y.len(), self.cols, "gemv_trans: y length != cols");
        if alpha == 0.0 {
            apply_beta(beta, y);
            return;
        }
        for (j, yj) in y.iter_mut().enumerate() {
            let dot: f64 = self.col(j).iter().zip(x).map(|(a, b)| a * b).sum();
            *yj = beta_combine(beta, *yj, alpha * dot);
        }
    }

    /// `C = alpha * A * B + beta * C` (`beta == 0` assigns, BLAS-style;
    /// `alpha == 0` reads neither `A` nor `B`). Packed-panel cache
    /// blocking: A is packed once into `MR`-row strips shared read-only by
    /// every chunk; each column chunk packs its own alpha-folded
    /// `NR`-column B panels per `KC` K-block (buffers rented from the tile
    /// pool) and streams them through the register microkernel. Column
    /// chunks fan out onto the compute pool on `NR`-aligned boundaries, a
    /// pure function of the shape, so worker-count parity is untouched.
    pub fn gemm(&self, alpha: f64, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
        assert_eq!(self.cols, b.rows, "gemm inner dimension");
        assert_eq!(c.rows, self.rows, "gemm C rows");
        assert_eq!(c.cols, b.cols, "gemm C cols");
        debug_check_finite("gemm: A", &self.data);
        debug_check_finite("gemm: B", &b.data);
        let (m, kk, ccols) = (self.rows, self.cols, c.cols);
        if alpha == 0.0 || kk == 0 {
            apply_beta(beta, &mut c.data);
            return;
        }
        if m == 0 || ccols == 0 {
            return;
        }
        let strips_a = m.div_ceil(MR);
        let mut pa = tile::rent(strips_a * MR * kk);
        for k0 in (0..kk).step_by(KC) {
            let kb = KC.min(kk - k0);
            let block = &mut pa[strips_a * MR * k0..][..strips_a * MR * kb];
            tile::pack_a_strips(&self.data, m, k0, kb, block);
        }
        let pa = &*pa;
        let n = pool::chunk_count_granular(ccols, min_chunk_items(kk * m), NR);
        pool::run_split(
            &mut c.data,
            n,
            |i| {
                let r = pool::chunk_range_granular(ccols, n, i, NR);
                r.start * m..r.end * m
            },
            |i, sub| {
                let r = pool::chunk_range_granular(ccols, n, i, NR);
                let nc = r.len();
                apply_beta(beta, sub);
                let strips_b = nc.div_ceil(NR);
                let mut pb = tile::rent(strips_b * NR * KC.min(kk));
                for k0 in (0..kk).step_by(KC) {
                    let kb = KC.min(kk - k0);
                    let pbuf = &mut pb[..strips_b * NR * kb];
                    tile::pack_b_strips(&b.data, kk, r.start, nc, k0, kb, alpha, pbuf);
                    let pa_block = &pa[strips_a * MR * k0..][..strips_a * MR * kb];
                    microkernel_block(pa_block, pbuf, kb, m, nc, sub);
                }
            },
        );
    }

    /// Scalar reference twin of [`gemm`]: the historical serial jik triple
    /// loop, with the zero skip keyed on the raw entry (`b[k,j] == 0.0`
    /// skips that rank-1 contribution, suppressing IEEE propagation from
    /// non-finite `A` entries — never on the computed `alpha * b[k,j]`,
    /// which could underflow to zero). The blocked kernel may differ from
    /// this oracle in final ULPs; `kernel_reference` CI bounds the drift.
    pub fn gemm_reference(&self, alpha: f64, b: &DenseMatrix, beta: f64, c: &mut DenseMatrix) {
        assert_eq!(self.cols, b.rows, "gemm inner dimension");
        assert_eq!(c.rows, self.rows, "gemm C rows");
        assert_eq!(c.cols, b.cols, "gemm C cols");
        let (crows, ccols) = (c.rows, c.cols);
        if alpha == 0.0 {
            apply_beta(beta, &mut c.data);
            return;
        }
        for j in 0..ccols {
            let cj = &mut c.data[j * crows..(j + 1) * crows];
            apply_beta(beta, cj);
            for k in 0..self.cols {
                let bkj = b.get(k, j);
                if bkj == 0.0 {
                    continue;
                }
                let abkj = alpha * bkj;
                let ak = self.col(k);
                for (cij, aik) in cj.iter_mut().zip(ak) {
                    *cij += abkj * *aik;
                }
            }
        }
    }

    /// The transpose as a new matrix, 32×32 cache-blocked: within a tile
    /// the source columns stay cache-resident while each output column
    /// segment is written contiguously — replacing the strided-write
    /// per-element `set` loop (kept as [`transpose_reference`]).
    pub fn transpose(&self) -> DenseMatrix {
        const TB: usize = 32;
        let (m, n) = (self.rows, self.cols);
        let mut out = DenseMatrix::zeros(n, m);
        for i0 in (0..m).step_by(TB) {
            let ib = TB.min(m - i0);
            for j0 in (0..n).step_by(TB) {
                let jb = TB.min(n - j0);
                for di in 0..ib {
                    let src_row = i0 + di;
                    let dst = &mut out.data[src_row * n + j0..][..jb];
                    for (dj, d) in dst.iter_mut().enumerate() {
                        *d = self.data[src_row + (j0 + dj) * m];
                    }
                }
            }
        }
        out
    }

    /// Reference twin of [`transpose`]: the per-element loop. Both produce
    /// bit-identical output (transposition moves values, no arithmetic);
    /// the blocked version only fixes the memory access pattern.
    pub fn transpose_reference(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for (i, &v) in self.col(j).iter().enumerate() {
                out.set(j, i, v);
            }
        }
        out
    }

    /// `C += selfᵀ * B` where `self` is m×k, `B` is m×n and `C` is k×n —
    /// the partial-Gram product at the heart of distributed `WᵀV`/`WᵀW`.
    /// Transpose-packs `selfᵀ` once into `MR`-row strips (contiguous reads
    /// down A's columns) and drives the same register microkernel as
    /// [`gemm`], accumulating K-blocks into `C` in ascending order. Column
    /// chunks of `C` fan out onto the compute pool on `NR`-aligned
    /// boundaries, a pure function of the shape.
    pub fn gemm_tn_acc(&self, b: &DenseMatrix, c: &mut DenseMatrix) {
        assert_eq!(self.rows, b.rows, "gemm_tn inner dimension");
        assert_eq!(c.rows, self.cols, "gemm_tn C rows");
        assert_eq!(c.cols, b.cols, "gemm_tn C cols");
        debug_check_finite("gemm_tn_acc: A", &self.data);
        debug_check_finite("gemm_tn_acc: B", &b.data);
        let (kdim, mt, ccols) = (self.rows, self.cols, c.cols);
        if kdim == 0 || mt == 0 || ccols == 0 {
            return;
        }
        let strips_a = mt.div_ceil(MR);
        let mut pa = tile::rent(strips_a * MR * kdim);
        for k0 in (0..kdim).step_by(KC) {
            let kb = KC.min(kdim - k0);
            let block = &mut pa[strips_a * MR * k0..][..strips_a * MR * kb];
            tile::pack_at_strips(&self.data, kdim, mt, k0, kb, block);
        }
        let pa = &*pa;
        let n = pool::chunk_count_granular(ccols, min_chunk_items(kdim * mt), NR);
        pool::run_split(
            &mut c.data,
            n,
            |i| {
                let r = pool::chunk_range_granular(ccols, n, i, NR);
                r.start * mt..r.end * mt
            },
            |i, sub| {
                let r = pool::chunk_range_granular(ccols, n, i, NR);
                let nc = r.len();
                let strips_b = nc.div_ceil(NR);
                let mut pb = tile::rent(strips_b * NR * KC.min(kdim));
                for k0 in (0..kdim).step_by(KC) {
                    let kb = KC.min(kdim - k0);
                    let pbuf = &mut pb[..strips_b * NR * kb];
                    tile::pack_b_strips(&b.data, kdim, r.start, nc, k0, kb, 1.0, pbuf);
                    let pa_block = &pa[strips_a * MR * k0..][..strips_a * MR * kb];
                    microkernel_block(pa_block, pbuf, kb, mt, nc, sub);
                }
            },
        );
    }

    /// Scalar reference twin of [`gemm_tn_acc`]: the historical serial
    /// column-column dot loops, each `C[i,j]` accumulated as one complete
    /// dot product added to the prior value.
    pub fn gemm_tn_acc_reference(&self, b: &DenseMatrix, c: &mut DenseMatrix) {
        assert_eq!(self.rows, b.rows, "gemm_tn inner dimension");
        assert_eq!(c.rows, self.cols, "gemm_tn C rows");
        assert_eq!(c.cols, b.cols, "gemm_tn C cols");
        let crows = c.rows;
        for j in 0..c.cols {
            let cj = &mut c.data[j * crows..(j + 1) * crows];
            let bj = b.col(j);
            for (i2, cij) in cj.iter_mut().enumerate() {
                let ai = self.col(i2);
                let dot: f64 = ai.iter().zip(bj).map(|(x, y)| x * y).sum();
                *cij += dot;
            }
        }
    }

    /// Element-wise multiply.
    pub fn cell_mult(&mut self, other: &DenseMatrix) -> &mut Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= *b;
        }
        self
    }

    /// Element-wise divide with a small guard against division by zero
    /// (the ε-guarded division used by multiplicative NMF updates).
    pub fn cell_div_guarded(&mut self, other: &DenseMatrix, eps: f64) -> &mut Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a /= *b + eps;
        }
        self
    }

    /// Extract the sub-matrix with rows `r0..r1` and cols `c0..c1`.
    pub fn sub_matrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> DenseMatrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        let (m, n) = (r1 - r0, c1 - c0);
        let mut out = DenseMatrix::zeros(m, n);
        for j in 0..n {
            let src = &self.col(c0 + j)[r0..r1];
            out.data[j * m..(j + 1) * m].copy_from_slice(src);
        }
        out
    }

    /// Paste `src` so its (0,0) lands at `(r0, c0)` of `self`.
    pub fn paste(&mut self, r0: usize, c0: usize, src: &DenseMatrix) {
        assert!(r0 + src.rows <= self.rows && c0 + src.cols <= self.cols, "paste out of bounds");
        for j in 0..src.cols {
            let dst_col = c0 + j;
            let dst =
                &mut self.data[dst_col * self.rows + r0..dst_col * self.rows + r0 + src.rows];
            dst.copy_from_slice(src.col(j));
        }
    }

    /// Multiply into a fresh output vector: `A * x`.
    pub fn mult_vec(&self, x: &Vector) -> Vector {
        let mut y = Vector::zeros(self.rows);
        self.gemv(1.0, x.as_slice(), 0.0, y.as_mut_slice());
        y
    }

    /// Multiply into a fresh output vector: `Aᵀ * x`.
    pub fn mult_trans_vec(&self, x: &Vector) -> Vector {
        let mut y = Vector::zeros(self.cols);
        self.gemv_trans(1.0, x.as_slice(), 0.0, y.as_mut_slice());
        y
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute difference (testing aid).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Serial for DenseMatrix {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.rows as u64);
        buf.put_u64_le(self.cols as u64);
        write_f64_slice(&self.data, buf);
    }
    fn read(buf: &mut Bytes) -> Self {
        let rows = buf.get_u64_le() as usize;
        let cols = buf.get_u64_le() as usize;
        let data = read_f64_vec(buf);
        DenseMatrix::from_vec(rows, cols, data)
    }
    fn byte_len(&self) -> usize {
        16 + 8 + 8 * self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn layout_is_column_major() {
        let a = a23();
        assert_eq!(a.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(a.get(1, 2), 6.0);
        assert_eq!(a.col(1), &[2.0, 5.0]);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = a23();
        let x = [1.0, 0.0, -1.0];
        let mut y = [10.0, 20.0];
        a.gemv(2.0, &x, 0.5, &mut y);
        // A*x = [1-3, 4-6] = [-2, -2]; y = 2*[-2,-2] + 0.5*[10,20] = [1, 6]
        assert_eq!(y, [1.0, 6.0]);
    }

    #[test]
    fn gemv_trans_matches_manual() {
        let a = a23();
        let x = [1.0, 1.0];
        let mut y = [0.0; 3];
        a.gemv_trans(1.0, &x, 0.0, &mut y);
        assert_eq!(y, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemm_identity() {
        let a = a23();
        let i3 = DenseMatrix::identity(3);
        let mut c = DenseMatrix::zeros(2, 3);
        a.gemm(1.0, &i3, 0.0, &mut c);
        assert_eq!(c, a);
    }

    #[test]
    fn gemm_small_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = DenseMatrix::zeros(2, 2);
        a.gemm(1.0, &b, 0.0, &mut c);
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = a23();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), a.get(1, 2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]); // 3x2
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[2.0, 2.0, 0.0]]); // 3x3
        let mut c = DenseMatrix::zeros(2, 3);
        a.gemm_tn_acc(&b, &mut c);
        let mut expect = DenseMatrix::zeros(2, 3);
        a.transpose().gemm(1.0, &b, 0.0, &mut expect);
        assert!(c.max_abs_diff(&expect) < 1e-12);
        // Accumulation: a second call doubles the result.
        a.gemm_tn_acc(&b, &mut c);
        expect.scale(2.0);
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn cellwise_mult_and_guarded_div() {
        let mut a = DenseMatrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 0.0]]);
        a.cell_mult(&b);
        assert_eq!(a, DenseMatrix::from_rows(&[&[2.0, 8.0], &[18.0, 0.0]]));
        a.cell_div_guarded(&b, 1e-9);
        assert!((a.get(0, 0) - 2.0).abs() < 1e-6);
        assert!(a.get(1, 1).is_finite(), "division by zero is guarded");
    }

    #[test]
    fn sub_matrix_and_paste_round_trip() {
        let a = DenseMatrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[5.0, 6.0, 7.0, 8.0],
            &[9.0, 10.0, 11.0, 12.0],
        ]);
        let s = a.sub_matrix(1, 3, 1, 4);
        assert_eq!(s, DenseMatrix::from_rows(&[&[6.0, 7.0, 8.0], &[10.0, 11.0, 12.0]]));
        let mut b = DenseMatrix::zeros(3, 4);
        b.paste(1, 1, &s);
        assert_eq!(b.get(1, 1), 6.0);
        assert_eq!(b.get(2, 3), 12.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn empty_sub_matrix() {
        let a = a23();
        let s = a.sub_matrix(1, 1, 0, 3);
        assert_eq!(s.rows(), 0);
        assert_eq!(s.cols(), 3);
    }

    #[test]
    fn mult_vec_helpers() {
        let a = a23();
        let y = a.mult_vec(&Vector::from_vec(vec![1.0, 1.0, 1.0]));
        assert_eq!(y.as_slice(), &[6.0, 15.0]);
        let z = a.mult_trans_vec(&Vector::from_vec(vec![1.0, 1.0]));
        assert_eq!(z.as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn scale_cell_add_norms() {
        let mut a = a23();
        a.scale(2.0);
        assert_eq!(a.get(0, 0), 2.0);
        let b = a23();
        a.cell_add(&b);
        assert_eq!(a.get(1, 2), 18.0);
        let f = DenseMatrix::from_rows(&[&[3.0], &[4.0]]).frobenius_norm();
        assert!((f - 5.0).abs() < 1e-12);
    }

    #[test]
    fn serialization_round_trip() {
        let a = a23();
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), a.byte_len());
        assert_eq!(DenseMatrix::from_bytes(bytes), a);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn bad_buffer_panics() {
        DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
