//! Endurance under randomized failures: the full stack (runtime + store +
//! executor + a real application) driven through many random failures with
//! every restoration strategy, including Young's-formula adaptive
//! checkpointing. Results must equal the failure-free run every time.

use std::time::Duration;

use apgas::runtime::{Runtime, RuntimeConfig};
use resilient_gml::core::ChaosInjector;
use resilient_gml::prelude::*;

fn pr_cfg() -> PageRankConfig {
    PageRankConfig { nodes_per_place: 20, out_degree: 3, iterations: 40, alpha: 0.85, seed: 13 }
}

#[test]
fn chaos_with_shrink_mode() {
    chaos_run(RestoreMode::Shrink, 0, 101);
}

#[test]
fn chaos_with_elastic_mode() {
    chaos_run(RestoreMode::ReplaceElastic, 0, 202);
}

#[test]
fn chaos_with_redundant_then_fallback() {
    // Two spares, up to three failures: the third must fall back to shrink.
    chaos_run(RestoreMode::ReplaceRedundant, 2, 303);
}

fn chaos_run(mode: RestoreMode, spares: usize, seed: u64) {
    Runtime::run(RuntimeConfig::new(6).spares(spares).resilient(true), move |ctx| {
        let world = ctx.world();
        let cfg = pr_cfg();
        let (expect, _) = PageRank::run_simple(ctx, cfg, &world).unwrap();

        let app = ResilientPageRank::make(ctx, cfg, &world).unwrap();
        // Aggressive chaos: ~20% failure chance each iteration, max 3.
        let mut chaos = ChaosInjector::new(app, 0.2, 3, seed);
        let mut store = AppResilientStore::make(ctx).unwrap();
        let mut exec_cfg = ExecutorConfig::new(8, mode);
        exec_cfg.max_restores = 16;
        let exec = ResilientExecutor::new(exec_cfg);
        let (final_group, stats) = exec.run(ctx, &mut chaos, &world, &mut store).unwrap();

        let ranks = chaos.app.app.ranks(ctx).unwrap();
        assert!(
            ranks.max_abs_diff(&expect) < 1e-12,
            "{mode:?} seed {seed}: chaos changed the answer (diff {:.2e}, kills {})",
            ranks.max_abs_diff(&expect),
            chaos.kills()
        );
        assert!(chaos.kills() >= 1, "seed should produce failures");
        // A kill may land on an idle spare (no restore needed), so restores
        // can be below the kill count but never above it.
        assert!(stats.restores <= chaos.kills() as u64);
        match mode {
            RestoreMode::ReplaceElastic => assert_eq!(final_group.len(), 6),
            RestoreMode::ReplaceRedundant => {
                // With spares available, group-member kills are replaced
                // until the spares (possibly themselves killed) run out.
                assert!(final_group.len() >= 6 - (chaos.kills() as usize).saturating_sub(spares));
            }
            _ => assert_eq!(final_group.len(), 6 - stats.restores as usize),
        }
    })
    .unwrap();
}

#[test]
fn chaos_with_adaptive_checkpointing() {
    Runtime::run(RuntimeConfig::new(5).resilient(true), |ctx| {
        let world = ctx.world();
        let cfg = pr_cfg();
        let (expect, _) = PageRank::run_simple(ctx, cfg, &world).unwrap();

        let app = ResilientPageRank::make(ctx, cfg, &world).unwrap();
        let mut chaos = ChaosInjector::new(app, 0.1, 2, 777);
        let mut store = AppResilientStore::make(ctx).unwrap();
        let exec_cfg = ExecutorConfig::new(10, RestoreMode::Shrink)
            .with_mttf(Duration::from_millis(200));
        let exec = ResilientExecutor::new(exec_cfg);
        let (_, stats) = exec.run(ctx, &mut chaos, &world, &mut store).unwrap();

        let ranks = chaos.app.app.ranks(ctx).unwrap();
        assert!(ranks.max_abs_diff(&expect) < 1e-12);
        assert!(stats.checkpoints >= 2, "adaptive interval still checkpoints: {stats:?}");
    })
    .unwrap();
}

#[test]
fn back_to_back_failures_between_checkpoints() {
    // Two failures in the *same* inter-checkpoint window: the second restore
    // must roll back to the same snapshot and still finish correctly.
    Runtime::run(RuntimeConfig::new(5).resilient(true), |ctx| {
        let world = ctx.world();
        let cfg = pr_cfg();
        let (expect, _) = PageRank::run_simple(ctx, cfg, &world).unwrap();

        struct DoubleTap {
            inner: ResilientPageRank,
            kills: Vec<(u64, Place)>,
        }
        impl ResilientIterativeApp for DoubleTap {
            fn is_finished(&self, ctx: &Ctx, it: u64) -> bool {
                self.inner.is_finished(ctx, it)
            }
            fn step(&mut self, ctx: &Ctx, it: u64) -> GmlResult<()> {
                if let Some(pos) =
                    self.kills.iter().position(|(at, p)| *at == it && ctx.is_alive(*p))
                {
                    let (_, v) = self.kills.remove(pos);
                    ctx.kill_place(v)?;
                }
                self.inner.step(ctx, it)
            }
            fn checkpoint(&mut self, ctx: &Ctx, s: &mut AppResilientStore) -> GmlResult<()> {
                self.inner.checkpoint(ctx, s)
            }
            fn restore(
                &mut self,
                ctx: &Ctx,
                g: &PlaceGroup,
                s: &mut AppResilientStore,
                si: u64,
                rb: bool,
            ) -> GmlResult<()> {
                self.inner.restore(ctx, g, s, si, rb)
            }
        }

        let mut app = DoubleTap {
            inner: ResilientPageRank::make(ctx, cfg, &world).unwrap(),
            // Both failures land in the window after the checkpoint at 16.
            kills: vec![(18, Place::new(2)), (19, Place::new(4))],
        };
        let mut store = AppResilientStore::make(ctx).unwrap();
        let exec = ResilientExecutor::new(ExecutorConfig::new(8, RestoreMode::Shrink));
        let (final_group, stats) = exec.run(ctx, &mut app, &world, &mut store).unwrap();
        assert_eq!(final_group.len(), 3);
        assert_eq!(stats.restores, 2);
        let ranks = app.inner.app.ranks(ctx).unwrap();
        assert!(ranks.max_abs_diff(&expect) < 1e-12);
    })
    .unwrap();
}
