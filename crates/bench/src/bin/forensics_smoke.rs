//! Forensics smoke check for CI: runs a monitored resilient workload with
//! an injected failure and asserts, end to end, that
//!
//! 1. the Prometheus endpoint is scrapeable over localhost and its
//!    `gml_place_up` gauges flip when the kill fires,
//! 2. exactly one post-mortem flight-recorder bundle is captured per
//!    restore, its JSON validates with the built-in parser, and its
//!    recorded restore mode matches what was configured,
//! 3. bundles written to `GML_FORENSICS_DIR` land on disk as valid JSON.
//!
//! Exits non-zero on any violation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use apgas::prelude::Place;
use apgas::runtime::{Runtime, RuntimeConfig};
use apgas::trace::validate_json;
use gml_apps::ResilientPageRank;
use gml_bench::workloads;
use gml_core::{AppResilientStore, ExecutorConfig, FailureInjector, ResilientExecutor, RestoreMode};

/// One plain-HTTP GET against the monitor endpoint.
fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape response");
    assert!(response.starts_with("HTTP/1.0 200"), "bad response: {response:.60}");
    response
}

fn gauge(body: &str, family: &str, place: u32) -> Option<u64> {
    let needle = format!("{family}{{place=\"{place}\"}} ");
    body.lines().find_map(|l| l.strip_prefix(&needle).and_then(|v| v.trim().parse().ok()))
}

fn main() {
    let forensics_dir = std::env::temp_dir().join(format!("gml-forensics-{}", std::process::id()));
    std::fs::create_dir_all(&forensics_dir).expect("create forensics dir");
    std::env::set_var("GML_FORENSICS_DIR", &forensics_dir);

    let victim = Place::new(2);
    let rt = Runtime::new(
        RuntimeConfig::new(4).resilient(true).trace(true).monitor_port(0),
    );
    let addr = rt.monitor_addr().expect("monitor server must be up");
    println!("forensics smoke: monitor at http://{addr}/metrics");

    // Scrape 1: everyone alive, before any work.
    let before = scrape(addr);
    for p in 0..4u32 {
        assert_eq!(gauge(&before, "gml_place_up", p), Some(1), "place {p} must start up");
    }
    assert!(
        before.contains("# TYPE gml_tasks_spawned_total counter"),
        "runtime counters must be exposed"
    );

    let (stats, report) = rt
        .exec(move |ctx| {
            let group = ctx.world();
            let mut cfg = workloads::pagerank_cfg_for(12, group.len());
            cfg.nodes_per_place = 50; // smoke scale, not bench scale
            cfg.out_degree = 4;
            let pr = ResilientPageRank::make(ctx, cfg, &group).unwrap();
            let mut app = FailureInjector::new(pr, 6, victim);
            let mut store = AppResilientStore::make(ctx).unwrap();
            store.store().register_monitor(ctx);
            let exec = ResilientExecutor::new(ExecutorConfig::new(4, RestoreMode::Shrink));
            let (_, stats, report) =
                exec.run_reported(ctx, &mut app, &group, &mut store).unwrap();
            (stats, report)
        })
        .expect("forensics smoke run");

    // Scrape 2: the victim's liveness gauge must have flipped, and the
    // store collector must be publishing per-place inventory.
    let after = scrape(addr);
    assert_eq!(gauge(&after, "gml_place_up", victim.id()), Some(0), "victim must be down");
    assert_eq!(gauge(&after, "gml_place_up", 0), Some(1), "place zero is immortal");
    assert_eq!(
        gauge(&after, "gml_store_place_alive", victim.id()),
        Some(0),
        "store inventory must report the dead shard"
    );
    assert!(after.contains("gml_span_latency_nanos"), "histogram quantiles must be exposed");

    // Exactly one valid bundle per restore, with the configured mode.
    assert!(stats.restores >= 1, "the injected kill must force a restore");
    assert_eq!(report.bundles.len() as u64, stats.restores, "one bundle per restore");
    for b in &report.bundles {
        b.validate().expect("bundle must serialize to valid JSON");
        assert_eq!(b.decision.configured_mode, "shrink");
        assert_eq!(b.decision.effective_label, "shrink");
        assert!(b.decision.dead_places.contains(&victim.id()));
        assert!(!b.trace_tail.is_empty(), "tracing was on: the tail must hold events");
    }

    // The bundles also landed on disk, as valid JSON.
    let mut on_disk = 0;
    for entry in std::fs::read_dir(&forensics_dir).expect("read forensics dir") {
        let path = entry.unwrap().path();
        let json = std::fs::read_to_string(&path).expect("read bundle");
        validate_json(&json)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        assert!(json.contains("\"effective_label\":\"shrink\""));
        on_disk += 1;
    }
    assert_eq!(on_disk as u64, stats.restores, "every bundle must be written to disk");

    rt.shutdown();
    let _ = std::fs::remove_dir_all(&forensics_dir);
    println!(
        "forensics smoke: all checks passed ({} restore(s), {} bundle(s) on disk)",
        stats.restores, on_disk
    );
}
