#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== trace smoke =="
# A traced example run must leave behind a valid, non-empty Chrome trace;
# trace_smoke re-validates that file, runs its own traced resilient
# workload, and bounds the cost of the disabled tracing fast path.
TRACE_JSON="$(mktemp -t gml_trace_XXXXXX.json)"
trap 'rm -f "$TRACE_JSON"' EXIT
GML_TRACE=1 GML_TRACE_OUT="$TRACE_JSON" \
    cargo run --release --example failure_drill > /dev/null
test -s "$TRACE_JSON" || { echo "trace smoke: $TRACE_JSON is empty"; exit 1; }
cargo run --release -p gml-bench --bin trace_smoke -- "$TRACE_JSON"

echo "== forensics smoke =="
# Kills a place mid-run, scrapes the Prometheus endpoint over localhost
# (gml_place_up must flip), and validates every post-mortem bundle with the
# built-in JSON parser — one bundle per restore, in memory and on disk.
cargo run --release -p gml-bench --bin forensics_smoke

echo "CI OK"
