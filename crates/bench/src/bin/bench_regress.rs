//! Bench regression gate for CI: diffs a fresh `bench_json` run against the
//! committed `BENCH_*.json` baselines and fails loudly when any benchmark
//! minimum or derived speedup drifts beyond the tolerance (scaled per file
//! by an empirically-set noise factor — see [`FILES`]).
//!
//! Usage: `bench_regress <baseline_dir> <fresh_dir>`
//!
//! Both directories must hold the `BENCH_*.json` files `bench_json` writes.
//! Files whose host-metadata stamps (resolved worker count, cpu count)
//! disagree between baseline and fresh are skipped with a warning — numbers
//! taken at different widths are not comparable, and failing on them would
//! just teach people to ignore the gate.
//!
//! Tolerance is a fraction of the baseline value, symmetric (a big speedUP
//! also fails: it means the committed baseline is stale and must be
//! regenerated). Default 0.25 (±25%); override with `GML_BENCH_TOLERANCE`
//! (e.g. `0.4`, or `40%`).
//!
//! The memory-footprint keys `bench_json` emits (`mem_store_high_water_bytes`,
//! `mem_arena_parked_high_water_bytes`, `mem_heap_peak_bytes`) are plain
//! top-level numerics, so they ride the same tolerance machinery as the
//! timing minimums with no special casing here: a checkpoint path that
//! starts retaining substantially more memory fails this gate exactly like
//! one that got slower. They are deliberately NOT in [`SKIP_KEYS`].

use std::collections::BTreeMap;

/// The files `bench_json` writes, each with a noise factor scaling the base
/// tolerance: single-threaded codec loops are tight, the kernel pool adds
/// scheduling variance, and the 4-place checkpoint plane (dispatcher +
/// ship threads contending for cores) swings hardest run-to-run.
const FILES: [(&str, f64); 3] = [
    ("BENCH_serial_throughput.json", 1.0),
    ("BENCH_kernel_throughput.json", 2.0),
    ("BENCH_checkpoint_throughput.json", 3.0),
];

/// Keys never compared: host metadata (guard keys, compared exactly),
/// allocator counters, and values whose relative delta is meaningless —
/// near-zero baselines, or background busy time that depends entirely on
/// how the OS interleaved the ship threads.
const SKIP_KEYS: [&str; 11] = [
    "workers",
    "available_parallelism",
    "gml_workers_env",
    "encode_arena_hits",
    "encode_arena_misses",
    "overlap_saving_ns_per_run",
    "ship_mean_ns",
    "ckpt_level",
    "ckpt_chunk",
    "ckpt_lossy_tol",
    "codec_ns_small_mutation",
];

/// Extract comparable metrics from one `bench_json` output file: every
/// benchmark's `min_ns` (keyed by its name — the minimum is the stable
/// statistic on a shared box; the mean soaks up scheduler noise) plus every
/// top-level numeric key. The format is this workspace's own writer, so a
/// line-oriented scanner is exact, not approximate.
fn parse_metrics(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if let (Some(name), Some(min)) =
            (extract_str(line, "\"name\": \""), extract_num(line, "\"min_ns\": "))
        {
            out.insert(name, min);
            continue;
        }
        // Top-level scalar: `"key": <number>`.
        if let Some(rest) = line.strip_prefix('"') {
            if let Some(q) = rest.find('"') {
                let key = &rest[..q];
                if let Some(v) = extract_num(line, &format!("\"{key}\": ")) {
                    out.insert(key.to_string(), v);
                }
            }
        }
    }
    out
}

fn extract_str(line: &str, prefix: &str) -> Option<String> {
    let start = line.find(prefix)? + prefix.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract a top-level *string* value (`"key": "value"`) — string metadata
/// like the codec-mode stamp never enters `parse_metrics` (numerics only),
/// so the guards read it straight from the raw text.
fn extract_top_str(json: &str, key: &str) -> Option<String> {
    let prefix = format!("\"{key}\": \"");
    json.lines().find_map(|line| extract_str(line.trim(), &prefix))
}

fn extract_num(line: &str, prefix: &str) -> Option<f64> {
    let start = line.find(prefix)? + prefix.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn tolerance() -> f64 {
    match std::env::var("GML_BENCH_TOLERANCE") {
        Ok(v) if !v.is_empty() => {
            let v = v.trim();
            let (num, percent) = match v.strip_suffix('%') {
                Some(n) => (n, true),
                None => (v, false),
            };
            match num.trim().parse::<f64>() {
                Ok(f) if f > 0.0 => {
                    if percent || f > 1.0 {
                        f / 100.0
                    } else {
                        f
                    }
                }
                _ => {
                    eprintln!("bench regress: ignoring unparsable GML_BENCH_TOLERANCE={v:?}");
                    0.25
                }
            }
        }
        _ => 0.25,
    }
}

/// What became of one file pair: either it was actually compared (with some
/// number of violations), or it was skipped with a reason. The distinction
/// matters in `main`: a run where *every* file was skipped compared nothing
/// and must not report success.
enum FileOutcome {
    /// The pair was diffed; carries the violation count.
    Compared(usize),
    /// The pair was not diffed; carries the human-readable reason.
    Skipped(String),
}

/// Compare one file pair at its effective tolerance.
fn compare_file(name: &str, baseline_dir: &str, fresh_dir: &str, tol: f64) -> FileOutcome {
    let base_path = format!("{baseline_dir}/{name}");
    let fresh_path = format!("{fresh_dir}/{name}");
    let base_json = match std::fs::read_to_string(&base_path) {
        Ok(s) => s,
        Err(e) => {
            let reason = format!("no baseline {base_path} ({e})");
            println!("bench regress: {name}: {reason} — skipping");
            return FileOutcome::Skipped(reason);
        }
    };
    let fresh_json = match std::fs::read_to_string(&fresh_path) {
        Ok(s) => s,
        Err(e) => {
            println!("bench regress: FRESH RUN MISSING {fresh_path} ({e})");
            return FileOutcome::Compared(1);
        }
    };
    let base = parse_metrics(&base_json);
    let fresh = parse_metrics(&fresh_json);

    // Host-metadata guard: widths must match for the numbers to compare.
    for guard in ["workers", "available_parallelism"] {
        let (b, f) = (base.get(guard), fresh.get(guard));
        if b.is_some() && f.is_some() && b != f {
            let reason = format!(
                "{guard} differs (baseline {:?}, fresh {:?}); numbers taken at different \
                 widths are not comparable — regenerate baselines on this host",
                b.unwrap(),
                f.unwrap()
            );
            println!("bench regress: {name}: {reason}");
            return FileOutcome::Skipped(reason);
        }
    }

    // Checkpoint-codec guard: wire-byte metrics taken under different codec
    // configurations (mode string, level/chunk/tolerance numerics) measure
    // different pipelines — skip with a reason rather than fail noisily.
    let (b_codec, f_codec) =
        (extract_top_str(&base_json, "ckpt_codec"), extract_top_str(&fresh_json, "ckpt_codec"));
    if b_codec.is_some() && f_codec.is_some() && b_codec != f_codec {
        let reason = format!(
            "ckpt_codec differs (baseline {:?}, fresh {:?}); wire-byte numbers under \
             different checkpoint codecs are not comparable — regenerate baselines with \
             the current GML_CKPT_* configuration",
            b_codec.unwrap(),
            f_codec.unwrap()
        );
        println!("bench regress: {name}: {reason}");
        return FileOutcome::Skipped(reason);
    }
    for guard in ["ckpt_level", "ckpt_chunk", "ckpt_lossy_tol"] {
        let (b, f) = (base.get(guard), fresh.get(guard));
        if b.is_some() && f.is_some() && b != f {
            let reason = format!(
                "{guard} differs (baseline {:?}, fresh {:?}); codec knobs changed — \
                 regenerate baselines with the current GML_CKPT_* configuration",
                b.unwrap(),
                f.unwrap()
            );
            println!("bench regress: {name}: {reason}");
            return FileOutcome::Skipped(reason);
        }
    }

    println!("== {name} (tolerance ±{:.0}%) ==", tol * 100.0);
    println!("{:<55} {:>14} {:>14} {:>9}", "key", "baseline", "fresh", "delta");
    let mut violations = 0usize;
    for (key, &b) in &base {
        if SKIP_KEYS.contains(&key.as_str()) {
            continue;
        }
        let Some(&f) = fresh.get(key) else {
            println!("{key:<55} {b:>14.1} {:>14} {:>9}", "MISSING", "—");
            continue;
        };
        if b == 0.0 {
            continue; // relative delta undefined
        }
        let delta = (f - b) / b;
        let flag = if delta.abs() > tol {
            violations += 1;
            " !!"
        } else {
            ""
        };
        println!("{key:<55} {b:>14.1} {f:>14.1} {:>+8.1}%{flag}", delta * 100.0);
    }
    for key in fresh.keys() {
        if !base.contains_key(key) && !SKIP_KEYS.contains(&key.as_str()) {
            println!("{key:<55} {:>14} — new key, not in baseline", "—");
        }
    }
    FileOutcome::Compared(violations)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_dir, fresh_dir) = match args.as_slice() {
        [b, f] => (b.as_str(), f.as_str()),
        _ => {
            eprintln!("usage: bench_regress <baseline_dir> <fresh_dir>");
            std::process::exit(2);
        }
    };
    let tol = tolerance();
    let mut violations = 0usize;
    let mut compared = 0usize;
    let mut skipped: Vec<(&str, String)> = Vec::new();
    for (name, factor) in FILES {
        match compare_file(name, baseline_dir, fresh_dir, tol * factor) {
            FileOutcome::Compared(v) => {
                compared += 1;
                violations += v;
            }
            FileOutcome::Skipped(reason) => skipped.push((name, reason)),
        }
    }
    // Recap every skip so a partially-degraded gate is visible at the end
    // of the log, not just buried mid-scroll.
    for (name, reason) in &skipped {
        eprintln!("bench regress: skipped {name}: {reason}");
    }
    // A gate that skipped everything compared nothing: its "success" would
    // be vacuous, and a stale or wrong-width baseline set would pass CI
    // forever. Fail loudly instead.
    if compared == 0 {
        eprintln!(
            "bench regress: all {} BENCH file(s) were skipped — nothing was compared; \
             regenerate the committed baselines on this host",
            skipped.len()
        );
        std::process::exit(1);
    }
    if violations > 0 {
        eprintln!(
            "bench regress: {violations} metric(s) drifted beyond tolerance (base ±{:.0}%) — \
             if the change is intentional, regenerate the committed BENCH_*.json with bench_json",
            tol * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench regress: all metrics within tolerance (base ±{:.0}%) of baselines \
         ({compared} file(s) compared, {} skipped)",
        tol * 100.0,
        skipped.len()
    );
}
