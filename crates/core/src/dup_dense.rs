//! `DupDenseMatrix`: a dense matrix duplicated at every place of a group.
//!
//! Duplicated matrices trade memory for communication-free reads: every
//! place has the full matrix. Changing the place group "simply means
//! duplicating the matrix on a different number of places" (§IV-A2), and
//! restore re-loads a full copy per place.

use apgas::prelude::*;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gml_matrix::DenseMatrix;
use parking_lot::Mutex;

use crate::codec::PayloadClass;
use crate::error::{GmlError, GmlResult};
use crate::snapshot::{ErrorPot, Snapshot, SnapshotBuilder, Snapshottable};
use crate::store::ResilientStore;

/// A dense matrix with one full duplicate per place of its group.
pub struct DupDenseMatrix {
    object_id: u64,
    rows: usize,
    cols: usize,
    group: PlaceGroup,
    plh: PlaceLocalHandle<Mutex<DenseMatrix>>,
}

impl DupDenseMatrix {
    /// Create an all-zero `rows × cols` matrix duplicated over `group`.
    pub fn make(ctx: &Ctx, rows: usize, cols: usize, group: &PlaceGroup) -> GmlResult<Self> {
        let plh =
            PlaceLocalHandle::make(ctx, group, move |_| Mutex::new(DenseMatrix::zeros(rows, cols)))?;
        Ok(DupDenseMatrix {
            object_id: crate::fresh_object_id(),
            rows,
            cols,
            group: group.clone(),
            plh,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The place group this object is laid out over.
    pub fn group(&self) -> &PlaceGroup {
        &self.group
    }

    /// The copy at the current place.
    pub fn local(&self, ctx: &Ctx) -> GmlResult<std::sync::Arc<Mutex<DenseMatrix>>> {
        Ok(self.plh.local(ctx)?)
    }

    /// A copyable handle for app-defined collectives.
    pub fn handle(&self) -> DupDenseHandle {
        DupDenseHandle { plh: self.plh }
    }

    pub(crate) fn plh_handle(&self) -> PlaceLocalHandle<Mutex<DenseMatrix>> {
        self.plh
    }

    /// Initialise every copy as `m[i][j] = f(i, j)` (deterministic at each
    /// place, no communication).
    pub fn init<F>(&self, ctx: &Ctx, f: F) -> GmlResult<()>
    where
        F: Fn(usize, usize) -> f64 + Send + Sync + Clone + 'static,
    {
        let plh = self.plh;
        let pot = ErrorPot::new();
        let res = ctx.finish(|fs| {
            for p in self.group.iter() {
                let f = f.clone();
                let pot = pot.clone();
                fs.async_at(p, move |ctx| {
                    pot.run(|| {
                        let m = plh.local(ctx)?;
                        let mut m = m.lock();
                        for j in 0..m.cols() {
                            for i in 0..m.rows() {
                                m.set(i, j, f(i, j));
                            }
                        }
                        Ok(())
                    });
                });
            }
        });
        pot.into_result(res)
    }

    /// Broadcast the root copy (group index 0) to all other places.
    pub fn sync(&self, ctx: &Ctx) -> GmlResult<()> {
        let root = self.group.place(0);
        let plh = self.plh;
        let payload: Bytes = ctx.at(root, move |ctx| -> ApgasResult<Bytes> {
            Ok(ctx.encode(&*plh.local(ctx)?.lock()))
        })??;
        let pot = ErrorPot::new();
        let res = ctx.finish(|fs| {
            for p in self.group.iter() {
                if p == root {
                    continue;
                }
                ctx.record_bytes(payload.len());
                let payload = payload.clone();
                let pot = pot.clone();
                fs.async_at(p, move |ctx| {
                    pot.run(|| {
                        ctx.record_bytes_received(payload.len());
                        *plh.local(ctx)?.lock() = ctx.decode::<DenseMatrix>(payload);
                        Ok(())
                    });
                });
            }
        });
        pot.into_result(res)
    }

    /// Re-duplicate over `new_places` (zeroed; restore to repopulate).
    pub fn remake(&mut self, ctx: &Ctx, new_places: &PlaceGroup) -> GmlResult<()> {
        let plh = self.plh;
        let (rows, cols) = (self.rows, self.cols);
        for p in self.group.iter() {
            if ctx.is_alive(p) && !new_places.contains(p) {
                ctx.at(p, move |ctx| plh.remove_local(ctx))?;
            }
        }
        ctx.finish(|fs| {
            for p in new_places.iter() {
                fs.async_at(p, move |ctx| {
                    plh.set_local(ctx, Mutex::new(DenseMatrix::zeros(rows, cols)));
                });
            }
        })?;
        self.group = new_places.clone();
        Ok(())
    }
}

/// A copyable handle to a duplicated dense matrix's per-place copies.
#[derive(Clone, Copy)]
pub struct DupDenseHandle {
    plh: PlaceLocalHandle<Mutex<DenseMatrix>>,
}

impl DupDenseHandle {
    /// The copy stored at the current place.
    pub fn local(&self, ctx: &Ctx) -> GmlResult<std::sync::Arc<Mutex<DenseMatrix>>> {
        Ok(self.plh.local(ctx)?)
    }
}

impl Snapshottable for DupDenseMatrix {
    fn object_id(&self) -> u64 {
        self.object_id
    }

    fn payload_class(&self) -> PayloadClass {
        // `DenseMatrix::write` is rows + cols + length (3 u64s) followed by
        // packed f64s.
        PayloadClass::F64Tail { offset: 24 }
    }

    fn make_snapshot(&self, ctx: &Ctx, store: &ResilientStore) -> GmlResult<Snapshot> {
        let _span = ctx.trace_span(SpanKind::SnapshotObj, self.object_id);
        let snap_id = store.fresh_snap_id();
        let owner = self.group.place(0);
        let backup = self.group.place(self.group.next_index(0));
        let plh = self.plh;
        let store2 = store.clone();
        let len = ctx.at(owner, move |ctx| -> GmlResult<usize> {
            let bytes = ctx.encode(&*plh.local(ctx)?.lock());
            // A single-entry batch: same transport as the multi-block
            // objects, so deferred shipping applies uniformly.
            store2.save_batch(ctx, snap_id, vec![(0, bytes)], backup)
        })??;
        let builder = SnapshotBuilder::new();
        builder.record(0, owner, backup, len);
        let mut desc = BytesMut::new();
        desc.put_u64_le(self.rows as u64);
        desc.put_u64_le(self.cols as u64);
        Ok(builder.build_at(ctx, snap_id, self.object_id, self.group.clone(), desc.freeze()))
    }

    fn restore_snapshot(
        &mut self,
        ctx: &Ctx,
        store: &ResilientStore,
        snapshot: &Snapshot,
    ) -> GmlResult<()> {
        let _span = ctx.trace_span(SpanKind::RestoreObj, self.object_id);
        let mut desc = snapshot.descriptor.clone();
        let rows = desc.get_u64_le() as usize;
        let cols = desc.get_u64_le() as usize;
        if rows != self.rows || cols != self.cols {
            return Err(GmlError::shape("snapshot dims != DupDenseMatrix dims"));
        }
        let plh = self.plh;
        let pot = ErrorPot::new();
        let store2 = store.clone();
        let snap = snapshot.clone();
        let res = ctx.finish(|fs| {
            for p in self.group.iter() {
                let pot = pot.clone();
                let store2 = store2.clone();
                let snap = snap.clone();
                fs.async_at(p, move |ctx| {
                    pot.run(|| {
                        let bytes = snap.fetch(ctx, &store2, 0)?;
                        *plh.local(ctx)?.lock() = ctx.decode::<DenseMatrix>(bytes);
                        Ok(())
                    });
                });
            }
        });
        pot.into_result(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apgas::runtime::{Runtime, RuntimeConfig};

    fn run(places: usize, f: impl FnOnce(&Ctx) + Send + 'static) {
        Runtime::run(RuntimeConfig::new(places).resilient(true), f).unwrap();
    }

    #[test]
    fn init_sync_and_read() {
        run(3, |ctx| {
            let g = ctx.world();
            let m = DupDenseMatrix::make(ctx, 2, 2, &g).unwrap();
            m.init(ctx, |i, j| (i * 2 + j) as f64).unwrap();
            // Mutate root only, then broadcast.
            m.local(ctx).unwrap().lock().set(0, 0, 99.0);
            m.sync(ctx).unwrap();
            let plh = m.plh;
            let far = ctx
                .at(g.place(2), move |ctx| plh.local(ctx).unwrap().lock().clone())
                .unwrap();
            assert_eq!(far.get(0, 0), 99.0);
            assert_eq!(far.get(1, 1), 3.0);
        });
    }

    #[test]
    fn read_only_reuse_and_replica_placement() {
        run(3, |ctx| {
            let g = ctx.world();
            let store = crate::store::ResilientStore::make(ctx).unwrap();
            let m = DupDenseMatrix::make(ctx, 2, 2, &g).unwrap();
            m.init(ctx, |i, j| (i + j) as f64).unwrap();
            let snap = m.make_snapshot(ctx, &store).unwrap();
            // Owner is the group root, backup the next group member.
            let loc = snap.entry(0).unwrap();
            assert_eq!(loc.owner, g.place(0));
            assert_eq!(loc.backup, g.place(1));
            assert!(snap.fully_redundant(ctx));
            ctx.kill_place(g.place(1)).unwrap();
            assert!(!snap.fully_redundant(ctx), "lost the backup replica");
            assert!(snap.reachable(ctx, &store), "owner copy still serves reads");
        });
    }

    #[test]
    fn snapshot_restore_over_shrunk_group() {
        run(4, |ctx| {
            let g = ctx.world();
            let store = ResilientStore::make(ctx).unwrap();
            let mut m = DupDenseMatrix::make(ctx, 3, 2, &g).unwrap();
            m.init(ctx, |i, j| (10 * i + j) as f64).unwrap();
            let snap = m.make_snapshot(ctx, &store).unwrap();
            ctx.kill_place(Place::new(3)).unwrap();
            let survivors = g.without(&[Place::new(3)]);
            m.remake(ctx, &survivors).unwrap();
            m.restore_snapshot(ctx, &store, &snap).unwrap();
            let got = m.local(ctx).unwrap().lock().clone();
            assert_eq!(got.get(2, 1), 21.0);
            assert_eq!(m.group().len(), 3);
        });
    }
}
