//! Log-bucketed latency histograms and the labeled metrics registry.
//!
//! The flat counters in [`crate::stats`] answer *how much*; the histograms
//! here answer *how long, and how badly in the tail* — the distinction the
//! paper's evaluation leans on (mean checkpoint time in Table III hides the
//! p99 ctl round trip that dominates Figs 2–4 at scale). Every traced span
//! kind ([`crate::trace::SpanKind`]) feeds one histogram; extra ad-hoc
//! series can be registered by name.
//!
//! Buckets are powers of two over nanoseconds: bucket 0 holds the value 0,
//! bucket *i* (i ≥ 1) holds values in `[2^(i-1), 2^i)`. Recording is a
//! single relaxed `fetch_add`; percentile estimates are resolved from the
//! cumulative bucket counts and reported as the bucket's upper bound
//! (clamped to the exact observed maximum), so `p50 ≤ p95 ≤ p99 ≤ max`
//! always holds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::trace::{SpanKind, SPAN_KIND_COUNT};

/// Number of power-of-two buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// A lock-free histogram of `u64` samples (typically nanoseconds) in
/// power-of-two buckets.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, otherwise `1 + floor(log2(v))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound (inclusive representative) of bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Relaxed atomics; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// A point-in-time copy for percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = slot.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`], with percentile accessors.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket in
    /// which the quantile sample falls, clamped to the exact observed max.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Format nanoseconds compactly for the report table.
pub fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// One histogram per [`SpanKind`] plus named ad-hoc series. This subsumes
/// the flat [`crate::stats::RuntimeStats`] counters: every histogram also
/// carries a count and a sum, so e.g. the `serial.encode` series reproduces
/// `encode_nanos` as its `sum`.
#[derive(Default)]
pub struct MetricsRegistry {
    kinds: [Histogram; SPAN_KIND_COUNT],
    named: Mutex<Vec<(&'static str, Arc<Histogram>)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for a span kind (lock-free).
    #[inline]
    pub fn kind(&self, k: SpanKind) -> &Histogram {
        &self.kinds[k as usize]
    }

    /// Get or create a named histogram (small mutex-guarded list; intended
    /// for registration-time use, not per-sample lookups — clone the `Arc`).
    pub fn named(&self, name: &'static str) -> Arc<Histogram> {
        let mut named = self.named.lock();
        if let Some((_, h)) = named.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        named.push((name, Arc::clone(&h)));
        h
    }

    /// Snapshot every non-empty series — per-kind and named — as
    /// `(name, snapshot)` pairs, in kind order then registration order.
    /// This is what the Prometheus exporter and the report table render.
    pub fn snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut rows: Vec<(String, HistogramSnapshot)> = Vec::new();
        for k in SpanKind::ALL {
            let s = self.kind(k).snapshot();
            if s.count > 0 {
                rows.push((k.name().to_string(), s));
            }
        }
        for (name, h) in self.named.lock().iter() {
            let s = h.snapshot();
            if s.count > 0 {
                rows.push(((*name).to_string(), s));
            }
        }
        rows
    }

    /// Render every non-empty series as an aligned latency table
    /// (`count / sum / p50 / p95 / p99 / max`).
    pub fn report(&self) -> String {
        let rows = self.snapshots();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "total", "p50", "p95", "p99", "max"
        ));
        for (name, s) in rows {
            out.push_str(&format!(
                "{:<20} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                s.count,
                fmt_nanos(s.sum),
                fmt_nanos(s.p50()),
                fmt_nanos(s.p95()),
                fmt_nanos(s.p99()),
                fmt_nanos(s.max),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_value_percentiles() {
        let h = Histogram::new();
        h.record(700);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 700);
        assert_eq!(s.max, 700);
        // 700 lands in bucket [512, 1023]; representative clamps to max.
        assert_eq!(s.p50(), 700);
        assert_eq!(s.p99(), 700);
    }

    #[test]
    fn percentiles_are_monotonic_and_bucket_accurate() {
        let h = Histogram::new();
        // 90 cheap samples, 10 expensive ones: p50 must sit in the cheap
        // bucket, p95/p99 in the expensive one.
        for _ in 0..90 {
            h.record(100); // bucket [64,127]
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 127);
        // Upper bound of the 1M bucket is 2^20-1, clamped to the exact max.
        assert_eq!(s.p95(), 1_000_000);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.mean(), (90 * 100 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn percentile_rank_edges() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        // Rank 1 of 4 at q=0.25 → the smallest sample's bucket.
        assert_eq!(s.percentile(0.25), 1);
        assert_eq!(s.percentile(1.0), 8);
        assert_eq!(s.percentile(0.0), 1, "q=0 still returns the first sample");
    }

    #[test]
    fn zero_values_occupy_bucket_zero() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(0);
        }
        h.record(9);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 9);
        assert_eq!(s.percentile(1.0), 9);
    }

    #[test]
    fn registry_kind_and_named_series() {
        let m = MetricsRegistry::new();
        m.kind(SpanKind::Encode).record(10);
        m.kind(SpanKind::Encode).record(20);
        let extra = m.named("custom.series");
        extra.record(5);
        assert!(Arc::ptr_eq(&extra, &m.named("custom.series")));
        let s = m.kind(SpanKind::Encode).snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 30);
        let report = m.report();
        assert!(report.contains("serial.encode"));
        assert!(report.contains("custom.series"));
        assert!(!report.contains("exec.restore"), "empty series are omitted");
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(5), "5ns");
        assert_eq!(fmt_nanos(1_500), "1.50µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
