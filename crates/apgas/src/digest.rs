//! FNV-1a content digests, shared by every output-validation surface.
//!
//! The task-resilience layer votes on replica outputs, the executor's
//! `ChecksummedStep` hook compares kernel outputs across a commit boundary,
//! and the parity gates in `crates/bench` compare runs across worker counts
//! — all of them need the same cheap, deterministic, dependency-free digest.
//! FNV-1a over the little-endian byte pattern is exact (no float rounding:
//! `f64::to_bits` hashes the representation, so `0.0` and `-0.0` differ and
//! NaN payloads are preserved) and stable across platforms of either
//! endianness.
//!
//! This is an *error-detection* checksum, not a cryptographic hash: it
//! catches bit flips and divergent computations, not adversaries.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x100000001b3;

/// A running FNV-1a digest, for feeding heterogeneous data incrementally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh digest at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold an `f64` slice in by bit pattern (little-endian), matching
    /// [`fnv1a_f64s`].
    pub fn write_f64s(&mut self, values: &[f64]) {
        for v in values {
            self.write(&v.to_bits().to_le_bytes());
        }
    }

    /// Fold a `u64` in (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest value so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over raw bytes.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// One-shot FNV-1a over an `f64` slice by bit pattern — byte-for-byte the
/// digest the parity gates (`kernel_parity`, `checkpoint_parity`) have
/// always printed, now shared instead of copied.
pub fn fnv1a_f64s(values: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_f64s(values);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a_bytes(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_bytes(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn f64_digest_is_bit_exact() {
        // Same bytes, same digest — incremental and one-shot agree.
        let vals = [1.0, -0.0, f64::NAN, 3.5e-12];
        let mut inc = Fnv1a::new();
        for v in vals {
            inc.write_f64s(&[v]);
        }
        assert_eq!(inc.finish(), fnv1a_f64s(&vals));
        // Bit-pattern hashing distinguishes 0.0 from -0.0.
        assert_ne!(fnv1a_f64s(&[0.0]), fnv1a_f64s(&[-0.0]));
        // A single flipped mantissa bit changes the digest.
        let flipped = f64::from_bits(1.0f64.to_bits() ^ 1);
        assert_ne!(fnv1a_f64s(&[1.0]), fnv1a_f64s(&[flipped]));
    }

    #[test]
    fn u64_and_byte_feeds_compose() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102030405060708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }
}
